//! Trace-driven replay: re-execute a recorded schedule on the virtual-time
//! kernel without the original workload closure.
//!
//! A [`ReplayProgram`] is a lowered form of a recorded trace: one
//! [`ReplayOp`] per recorded event, carrying the event template, its
//! intrinsic duration, its completion delta from the previous event on the
//! same rank, and (where the trace records one) a cross-rank sync
//! dependency. [`run_replay`] executes the program as an SPMD rank program
//! under [`crate::Machine::run`] with tracing *disabled* — the replayed
//! trace is assembled by hand from each rank's computed event stream, so
//! the kernel's own block/unblock bookkeeping never pollutes the output.
//!
//! ## Timing model
//!
//! Per rank, events replay in recorded order. For an op with recorded
//! completion `t_i` and predecessor completion `t_{i-1}`:
//!
//! * **Plain op** — completes at `cursor + (t_i − t_{i-1})`: the recorded
//!   inter-completion delta is preserved verbatim.
//! * **Sync edge** (lock hand-off, message receive, unblock wake) —
//!   completes at `max(cursor + delta, T_pred + lag)` where `T_pred` is
//!   the *replayed* completion of the producing op and
//!   `lag = t_i − t_pred` is the recorded slack on the edge. The extra
//!   wait, if any, stretches the event's recorded duration.
//! * **Barrier** — all ranks rendezvous per recorded episode. The episode
//!   shifts by `Δ = max_r(arrival_new_r − arrival_rec_r)` and every rank
//!   releases at its recorded release time plus `Δ`.
//!
//! When nothing is substituted (identity replay) every derived completion
//! equals its recorded stamp, so the replayed trace — events, final
//! clocks, and the pass-through metric registries — is byte-identical to
//! the input. Completion times are defined by `max` recurrences over
//! per-op values, independent of dispatch interleaving, so both engines
//! produce the same bytes.
//!
//! Sync edges always point from a strictly earlier recorded stamp to a
//! strictly later one, and intra-rank order is monotone; any dependency
//! cycle would need a strictly positive time increase around the loop,
//! so a well-formed program cannot deadlock.

use std::collections::{BTreeMap, HashMap};

use scioto_det::sync::Mutex;

use crate::config::{Engine, MachineConfig};
use crate::ctx::Ctx;
use crate::machine::Machine;
use crate::trace::{Gauge, StampedEvent, Trace, TraceEvent, VtHistogram};

/// Cross-rank synchronization recorded for one op.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplaySync {
    /// No recorded dependency: the op replays on the rank's own timeline.
    None,
    /// The op may not complete before op `pred_idx` of `pred_rank` plus
    /// the recorded edge slack.
    Edge {
        /// Producing rank.
        pred_rank: u32,
        /// Index of the producing op in `pred_rank`'s op list.
        pred_idx: u32,
        /// Recorded completion slack `t_consumer − t_producer` (> 0).
        lag_ns: u64,
    },
    /// A barrier episode: all ranks rendezvous on episode `episode`.
    Barrier {
        /// Episode index (the k-th BarrierWait on every rank).
        episode: u32,
        /// Recorded arrival delta from the previous op's completion.
        arr_delta_ns: u64,
        /// Recorded arrival stamp (release − recorded wait duration).
        rec_arrival_ns: u64,
    },
}

/// One recorded event, lowered for replay.
#[derive(Clone, Copy, Debug)]
pub struct ReplayOp {
    /// Event template; duration-carrying fields are rewritten on emit.
    pub ev: TraceEvent,
    /// Recorded completion delta from the previous op on this rank.
    pub delta_ns: u64,
    /// Intrinsic duration embedded in `ev` (0 for instant events).
    pub dur_ns: u64,
    /// Recorded completion stamp (used by barrier re-release and what-if
    /// diffing; identity replay reproduces it exactly).
    pub rec_t_ns: u64,
    /// Cross-rank dependency, if the trace records one.
    pub sync: ReplaySync,
    /// True when some other rank's op waits on this one: its replayed
    /// completion is published to the shared completion map.
    pub watched: bool,
}

/// A fully lowered replay input: per-rank op streams plus the trailing
/// idle gaps and pass-through metric registries needed to rebuild a
/// byte-identical [`Trace`].
#[derive(Clone, Debug, Default)]
pub struct ReplayProgram {
    /// Rank count of the recorded machine.
    pub nranks: usize,
    /// Per-rank ops in recorded order.
    pub ops: Vec<Vec<ReplayOp>>,
    /// Recorded gap between each rank's last event and its final clock.
    pub final_gap_ns: Vec<u64>,
    /// Recorded final clocks (used verbatim for ranks with no events).
    pub rec_final_clock_ns: Vec<u64>,
    /// Number of barrier episodes (identical on every rank).
    pub episodes: usize,
    /// Histogram registries carried through from the recorded trace.
    pub hists: Vec<BTreeMap<String, VtHistogram>>,
    /// Gauge registries carried through from the recorded trace.
    pub gauges: Vec<BTreeMap<String, Gauge>>,
}

/// Shared replay state: completion times of watched ops and the barrier
/// rendezvous ledger. Guarded by one mutex — ranks only touch it at sync
/// points, which are rare relative to plain ops.
struct ReplayState {
    completed: HashMap<(u32, u32), u64>,
    edge_waiters: HashMap<(u32, u32), Vec<usize>>,
    barriers: Vec<EpisodeState>,
}

#[derive(Default)]
struct EpisodeState {
    arrived: usize,
    shift: i64,
    done: bool,
    waiters: Vec<usize>,
}

/// Block until `(pred_rank, pred_idx)` publishes its replayed completion.
fn wait_for_edge(ctx: &Ctx, state: &Mutex<ReplayState>, key: (u32, u32), me: usize) -> u64 {
    loop {
        ctx.yield_point();
        {
            let mut g = state.lock();
            if let Some(&t) = g.completed.get(&key) {
                return t;
            }
            g.edge_waiters.entry(key).or_default().push(me);
        }
        ctx.block_at("replay: waiting on a recorded sync edge");
    }
}

/// Publish a watched op's replayed completion and wake its waiters.
fn publish(ctx: &Ctx, state: &Mutex<ReplayState>, me: usize, idx: usize, t: u64) {
    let waiters = {
        let mut g = state.lock();
        g.completed.insert((me as u32, idx as u32), t);
        g.edge_waiters
            .remove(&(me as u32, idx as u32))
            .unwrap_or_default()
    };
    for w in waiters {
        ctx.unblock(w, 0);
    }
}

/// Rendezvous on barrier `episode`, contributing this rank's arrival
/// shift; returns the episode's final shift once every rank has arrived.
fn barrier_sync(
    ctx: &Ctx,
    state: &Mutex<ReplayState>,
    episode: usize,
    my_shift: i64,
    me: usize,
    nranks: usize,
) -> i64 {
    ctx.yield_point();
    let mut g = state.lock();
    {
        let ep = &mut g.barriers[episode];
        ep.arrived += 1;
        if my_shift > ep.shift {
            ep.shift = my_shift;
        }
        if ep.arrived == nranks {
            ep.done = true;
            let shift = ep.shift;
            let waiters = std::mem::take(&mut ep.waiters);
            drop(g);
            for w in waiters {
                ctx.unblock(w, 0);
            }
            return shift;
        }
    }
    loop {
        if g.barriers[episode].done {
            return g.barriers[episode].shift;
        }
        g.barriers[episode].waiters.push(me);
        drop(g);
        ctx.block_at("replay: waiting at a recorded barrier");
        g = state.lock();
    }
}

/// Rewrite the duration field of a duration-carrying event template.
fn with_dur(ev: TraceEvent, dur: u64) -> TraceEvent {
    match ev {
        TraceEvent::StealAttempt { victim, got, .. } => TraceEvent::StealAttempt {
            victim,
            got,
            dur_ns: dur,
        },
        TraceEvent::LockWait { target, .. } => TraceEvent::LockWait {
            target,
            dur_ns: dur,
        },
        TraceEvent::BarrierWait { epoch, .. } => TraceEvent::BarrierWait { dur_ns: dur, epoch },
        TraceEvent::TdProgress { .. } => TraceEvent::TdProgress { dur_ns: dur },
        other => other,
    }
}

/// Intrinsic duration carried by an event (0 for instant events).
pub fn event_dur(ev: &TraceEvent) -> u64 {
    match *ev {
        TraceEvent::StealAttempt { dur_ns, .. }
        | TraceEvent::LockWait { dur_ns, .. }
        | TraceEvent::BarrierWait { dur_ns, .. }
        | TraceEvent::TdProgress { dur_ns } => dur_ns,
        _ => 0,
    }
}

/// Execute `prog` on the virtual-time kernel and rebuild the replayed
/// trace. Identity replay (a program lowered from a trace and not
/// re-priced) reproduces the recorded trace byte for byte.
pub fn run_replay(prog: &ReplayProgram) -> Trace {
    run_replay_on(prog, Engine::Auto)
}

/// [`run_replay`] with an explicit engine. The result is byte-identical
/// across engines: completion times are `max` recurrences over recorded
/// values, independent of dispatch interleaving.
pub fn run_replay_on(prog: &ReplayProgram, engine: Engine) -> Trace {
    let n = prog.nranks;
    assert!(n >= 1, "a replay program needs at least one rank");
    assert_eq!(prog.ops.len(), n);
    let state = Mutex::new(ReplayState {
        completed: HashMap::new(),
        edge_waiters: HashMap::new(),
        barriers: (0..prog.episodes).map(|_| EpisodeState::default()).collect(),
    });

    let out = Machine::run(
        MachineConfig::virtual_time(n).with_engine(engine),
        |ctx: &Ctx| {
            let me = ctx.rank();
            let ops = &prog.ops[me];
            let mut events: Vec<StampedEvent> = Vec::with_capacity(ops.len());
            let mut cursor: u64 = 0;
            for (idx, op) in ops.iter().enumerate() {
                // `dur` is the replayed duration: the op's intrinsic cost
                // stretched by any wait the replay introduced. A barrier's
                // recorded duration already spans arrival→release, so its
                // replayed duration is simply the new span.
                let (completion, dur) = match op.sync {
                    ReplaySync::None => (cursor + op.delta_ns, op.dur_ns),
                    ReplaySync::Edge {
                        pred_rank,
                        pred_idx,
                        lag_ns,
                    } => {
                        let base = cursor + op.delta_ns;
                        let t_pred = wait_for_edge(ctx, &state, (pred_rank, pred_idx), me);
                        let completion = base.max(t_pred + lag_ns);
                        (completion, op.dur_ns + (completion - base))
                    }
                    ReplaySync::Barrier {
                        episode,
                        arr_delta_ns,
                        rec_arrival_ns,
                    } => {
                        let arrival = cursor + arr_delta_ns;
                        let shift = barrier_sync(
                            ctx,
                            &state,
                            episode as usize,
                            arrival as i64 - rec_arrival_ns as i64,
                            me,
                            n,
                        );
                        // Δ ≥ this rank's own shift, so the shifted release
                        // never precedes the replayed arrival.
                        let completion = (op.rec_t_ns as i64 + shift) as u64;
                        (completion, completion - arrival)
                    }
                };
                let event = with_dur(op.ev, dur);
                events.push(StampedEvent {
                    t_ns: completion,
                    event,
                });
                if op.watched {
                    publish(ctx, &state, me, idx, completion);
                }
                cursor = completion;
            }
            let final_clock = if ops.is_empty() {
                prog.rec_final_clock_ns[me]
            } else {
                cursor + prog.final_gap_ns[me]
            };
            (events, final_clock)
        },
    );

    let mut events = Vec::with_capacity(n);
    let mut final_clock_ns = Vec::with_capacity(n);
    for (evs, clock) in out.results {
        events.push(evs);
        final_clock_ns.push(clock);
    }
    Trace {
        events,
        dropped: vec![0; n],
        final_clock_ns,
        wall_clock: false,
        hists: prog.hists.clone(),
        gauges: prog.gauges.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plain(ev: TraceEvent, delta: u64, rec_t: u64) -> ReplayOp {
        ReplayOp {
            ev,
            delta_ns: delta,
            dur_ns: event_dur(&ev),
            rec_t_ns: rec_t,
            sync: ReplaySync::None,
            watched: false,
        }
    }

    fn qd(depth: u32) -> TraceEvent {
        TraceEvent::QueueDepth {
            local: depth,
            shared: 0,
        }
    }

    /// Two ranks, a message edge, a barrier, and trailing idle gaps:
    /// identity replay must reproduce the recorded stamps exactly.
    fn two_rank_program() -> ReplayProgram {
        // Rank 0: send at 100 (watched), barrier arrive 150 release 200.
        // Rank 1: recv at 130 (edge from r0 op0, lag 30), barrier arrive
        //         160 release 200.
        let r0 = vec![
            ReplayOp {
                ev: TraceEvent::MsgSend {
                    dst: 1,
                    bytes: 8,
                    seq: 1,
                },
                delta_ns: 100,
                dur_ns: 0,
                rec_t_ns: 100,
                sync: ReplaySync::None,
                watched: true,
            },
            ReplayOp {
                ev: TraceEvent::BarrierWait {
                    dur_ns: 50,
                    epoch: 1,
                },
                delta_ns: 100,
                dur_ns: 50,
                rec_t_ns: 200,
                sync: ReplaySync::Barrier {
                    episode: 0,
                    arr_delta_ns: 50,
                    rec_arrival_ns: 150,
                },
                watched: false,
            },
        ];
        let r1 = vec![
            ReplayOp {
                ev: TraceEvent::MsgRecv { src: 0, seq: 1 },
                delta_ns: 130,
                dur_ns: 0,
                rec_t_ns: 130,
                sync: ReplaySync::Edge {
                    pred_rank: 0,
                    pred_idx: 0,
                    lag_ns: 30,
                },
                watched: false,
            },
            ReplayOp {
                ev: TraceEvent::BarrierWait {
                    dur_ns: 40,
                    epoch: 1,
                },
                delta_ns: 70,
                dur_ns: 40,
                rec_t_ns: 200,
                sync: ReplaySync::Barrier {
                    episode: 0,
                    arr_delta_ns: 30,
                    rec_arrival_ns: 160,
                },
                watched: false,
            },
        ];
        ReplayProgram {
            nranks: 2,
            ops: vec![r0, r1],
            final_gap_ns: vec![10, 0],
            rec_final_clock_ns: vec![210, 200],
            episodes: 1,
            hists: vec![BTreeMap::new(); 2],
            gauges: vec![BTreeMap::new(); 2],
        }
    }

    #[test]
    fn identity_replay_reproduces_recorded_stamps() {
        let t = run_replay(&two_rank_program());
        let stamps: Vec<Vec<u64>> = t
            .events
            .iter()
            .map(|evs| evs.iter().map(|e| e.t_ns).collect())
            .collect();
        assert_eq!(stamps, vec![vec![100, 200], vec![130, 200]]);
        assert_eq!(t.final_clock_ns, vec![210, 200]);
        assert_eq!(t.dropped, vec![0, 0]);
        // Durations survive unchanged.
        assert_eq!(event_dur(&t.events[0][1].event), 50);
        assert_eq!(event_dur(&t.events[1][1].event), 40);
    }

    #[test]
    fn engines_agree_byte_for_byte() {
        if !Engine::events_supported() {
            eprintln!("fiber engine unsupported on this target; skipping");
            return;
        }
        let prog = two_rank_program();
        let a = run_replay_on(&prog, Engine::Threads);
        let b = run_replay_on(&prog, Engine::Events);
        assert_eq!(a.to_jsonl(), b.to_jsonl());
    }

    #[test]
    fn late_producer_stretches_edge_wait() {
        let mut prog = two_rank_program();
        // Slow rank 0's send by 200 ns: the recv must wait, its stamp
        // moving with the producer while keeping the recorded 30 ns lag.
        prog.ops[0][0].delta_ns += 200;
        let t = run_replay(&prog);
        assert_eq!(t.events[0][0].t_ns, 300);
        assert_eq!(t.events[1][0].t_ns, 330);
        // The shared barrier shifts by rank 0's lateness (arrives at 350,
        // recorded 150 → shift 200): both ranks release at 400.
        assert_eq!(t.events[0][1].t_ns, 400);
        assert_eq!(t.events[1][1].t_ns, 400);
        // Rank 1's barrier wait grew: arrival 360, release 400.
        assert_eq!(event_dur(&t.events[1][1].event), 40);
        assert_eq!(t.final_clock_ns, vec![410, 400]);
    }

    #[test]
    fn faster_rank_shortens_nothing_but_waits_longer() {
        let mut prog = two_rank_program();
        // Rank 1 reaches the barrier immediately after its recv; rank 0
        // still gates the episode, so the release stays put and rank 1's
        // recorded 40 ns wait grows to cover the earlier arrival.
        prog.ops[1][1].sync = ReplaySync::Barrier {
            episode: 0,
            arr_delta_ns: 0,
            rec_arrival_ns: 160,
        };
        let t = run_replay(&prog);
        assert_eq!(t.events[1][0].t_ns, 130);
        assert_eq!(t.events[1][1].t_ns, 200);
        assert_eq!(event_dur(&t.events[1][1].event), 70);
    }

    #[test]
    fn plain_ops_follow_their_deltas() {
        let prog = ReplayProgram {
            nranks: 1,
            ops: vec![vec![plain(qd(1), 10, 10), plain(qd(2), 5, 15)]],
            final_gap_ns: vec![3],
            rec_final_clock_ns: vec![18],
            episodes: 0,
            hists: vec![BTreeMap::new()],
            gauges: vec![BTreeMap::new()],
        };
        let t = run_replay(&prog);
        assert_eq!(t.events[0][0].t_ns, 10);
        assert_eq!(t.events[0][1].t_ns, 15);
        assert_eq!(t.final_clock_ns, vec![18]);
    }

    #[test]
    fn empty_rank_keeps_recorded_final_clock() {
        let prog = ReplayProgram {
            nranks: 2,
            ops: vec![vec![plain(qd(1), 40, 40)], vec![]],
            final_gap_ns: vec![0, 0],
            rec_final_clock_ns: vec![40, 25],
            episodes: 0,
            hists: vec![BTreeMap::new(); 2],
            gauges: vec![BTreeMap::new(); 2],
        };
        let t = run_replay(&prog);
        assert_eq!(t.final_clock_ns, vec![40, 25]);
        assert!(t.events[1].is_empty());
    }
}
