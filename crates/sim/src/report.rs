//! Run reports: virtual makespan, per-rank clocks, kernel event counters.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::config::ExecMode;
use crate::trace::Trace;

/// Counters of kernel-level events, useful for sanity-checking how much
/// scheduling a run performed.
#[derive(Debug, Default)]
pub struct EventCounters {
    /// Scheduling points taken before shared-state operations.
    pub yields: AtomicU64,
    /// Times a rank parked waiting on a condition.
    pub blocks: AtomicU64,
    /// Wake notifications issued.
    pub unblocks: AtomicU64,
    /// Messages pushed through mailboxes.
    pub messages: AtomicU64,
}

impl EventCounters {
    /// Immutable snapshot of the counters.
    pub fn snapshot(&self) -> EventSnapshot {
        EventSnapshot {
            yields: self.yields.load(Ordering::Relaxed),
            blocks: self.blocks.load(Ordering::Relaxed),
            unblocks: self.unblocks.load(Ordering::Relaxed),
            messages: self.messages.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data snapshot of [`EventCounters`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventSnapshot {
    /// Scheduling points taken before shared-state operations.
    pub yields: u64,
    /// Times a rank parked waiting on a condition.
    pub blocks: u64,
    /// Wake notifications issued.
    pub unblocks: u64,
    /// Messages pushed through mailboxes.
    pub messages: u64,
}

/// Summary of a completed [`crate::Machine::run`].
#[derive(Debug, Clone)]
pub struct Report {
    /// Execution mode the machine ran in.
    pub mode: ExecMode,
    /// Completion time of the run: the maximum final rank clock in
    /// virtual-time mode, wall time in concurrent mode (nanoseconds).
    pub makespan_ns: u64,
    /// Final per-rank clocks in nanoseconds: each rank's final virtual
    /// clock in virtual-time mode; in concurrent mode, each rank thread's
    /// measured wall-clock span (machine start → program return, from the
    /// kernel's monotonic clock — never zero for a completed rank).
    pub rank_clock_ns: Vec<u64>,
    /// Kernel event counts for the whole run.
    pub events: EventSnapshot,
    /// Event trace and metrics, present when the machine ran with
    /// [`crate::TraceConfig::enabled`].
    pub trace: Option<Trace>,
}

impl Report {
    /// Makespan in seconds.
    pub fn makespan_secs(&self) -> f64 {
        self.makespan_ns as f64 / 1e9
    }

    /// Average final rank clock in nanoseconds (virtual clocks, or
    /// per-thread wall spans in concurrent mode).
    pub fn mean_rank_clock_ns(&self) -> f64 {
        if self.rank_clock_ns.is_empty() {
            return 0.0;
        }
        self.rank_clock_ns.iter().sum::<u64>() as f64 / self.rank_clock_ns.len() as f64
    }

    /// Load imbalance: the ratio of the largest final rank clock to the
    /// mean. 1.0 means perfectly balanced; returns 1.0 for empty reports
    /// or all-zero clocks. Meaningful in both modes now that concurrent
    /// runs fill `rank_clock_ns` with measured thread spans.
    pub fn imbalance(&self) -> f64 {
        let mean = self.mean_rank_clock_ns();
        if mean == 0.0 {
            return 1.0;
        }
        let max = self.rank_clock_ns.iter().copied().max().unwrap_or(0);
        max as f64 / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_counters() {
        let c = EventCounters::default();
        c.yields.fetch_add(3, Ordering::Relaxed);
        c.messages.fetch_add(1, Ordering::Relaxed);
        let s = c.snapshot();
        assert_eq!(s.yields, 3);
        assert_eq!(s.messages, 1);
        assert_eq!(s.blocks, 0);
    }

    #[test]
    fn report_helpers() {
        let r = Report {
            mode: ExecMode::VirtualTime,
            makespan_ns: 2_000_000_000,
            rank_clock_ns: vec![1_000, 3_000],
            events: EventCounters::default().snapshot(),
            trace: None,
        };
        assert!((r.makespan_secs() - 2.0).abs() < 1e-12);
        assert!((r.mean_rank_clock_ns() - 2_000.0).abs() < 1e-12);
        // max 3000 over mean 2000.
        assert!((r.imbalance() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn imbalance_degenerate_cases() {
        let mk = |clocks: Vec<u64>| Report {
            mode: ExecMode::VirtualTime,
            makespan_ns: 0,
            rank_clock_ns: clocks,
            events: EventCounters::default().snapshot(),
            trace: None,
        };
        assert_eq!(mk(vec![]).imbalance(), 1.0);
        assert_eq!(mk(vec![0, 0]).imbalance(), 1.0);
        assert_eq!(mk(vec![500, 500, 500]).imbalance(), 1.0);
    }
}
