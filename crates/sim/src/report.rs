//! Run reports: virtual makespan, per-rank clocks, kernel event counters.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::config::ExecMode;

/// Counters of kernel-level events, useful for sanity-checking how much
/// scheduling a run performed.
#[derive(Debug, Default)]
pub struct EventCounters {
    /// Scheduling points taken before shared-state operations.
    pub yields: AtomicU64,
    /// Times a rank parked waiting on a condition.
    pub blocks: AtomicU64,
    /// Wake notifications issued.
    pub unblocks: AtomicU64,
    /// Messages pushed through mailboxes.
    pub messages: AtomicU64,
}

impl EventCounters {
    /// Immutable snapshot of the counters.
    pub fn snapshot(&self) -> EventSnapshot {
        EventSnapshot {
            yields: self.yields.load(Ordering::Relaxed),
            blocks: self.blocks.load(Ordering::Relaxed),
            unblocks: self.unblocks.load(Ordering::Relaxed),
            messages: self.messages.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data snapshot of [`EventCounters`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventSnapshot {
    /// Scheduling points taken before shared-state operations.
    pub yields: u64,
    /// Times a rank parked waiting on a condition.
    pub blocks: u64,
    /// Wake notifications issued.
    pub unblocks: u64,
    /// Messages pushed through mailboxes.
    pub messages: u64,
}

/// Summary of a completed [`crate::Machine::run`].
#[derive(Debug, Clone)]
pub struct Report {
    /// Execution mode the machine ran in.
    pub mode: ExecMode,
    /// Completion time of the run: the maximum final rank clock in
    /// virtual-time mode, wall time in concurrent mode (nanoseconds).
    pub makespan_ns: u64,
    /// Final per-rank clocks (virtual nanoseconds; zero in concurrent mode).
    pub rank_clock_ns: Vec<u64>,
    /// Kernel event counts for the whole run.
    pub events: EventSnapshot,
}

impl Report {
    /// Makespan in seconds.
    pub fn makespan_secs(&self) -> f64 {
        self.makespan_ns as f64 / 1e9
    }

    /// Average final rank clock in nanoseconds (virtual-time mode).
    pub fn mean_rank_clock_ns(&self) -> f64 {
        if self.rank_clock_ns.is_empty() {
            return 0.0;
        }
        self.rank_clock_ns.iter().sum::<u64>() as f64 / self.rank_clock_ns.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_counters() {
        let c = EventCounters::default();
        c.yields.fetch_add(3, Ordering::Relaxed);
        c.messages.fetch_add(1, Ordering::Relaxed);
        let s = c.snapshot();
        assert_eq!(s.yields, 3);
        assert_eq!(s.messages, 1);
        assert_eq!(s.blocks, 0);
    }

    #[test]
    fn report_helpers() {
        let r = Report {
            mode: ExecMode::VirtualTime,
            makespan_ns: 2_000_000_000,
            rank_clock_ns: vec![1_000, 3_000],
            events: EventCounters::default().snapshot(),
        };
        assert!((r.makespan_secs() - 2.0).abs() < 1e-12);
        assert!((r.mean_rank_clock_ns() - 2_000.0).abs() < 1e-12);
    }
}
