//! Tracing and metrics: per-rank ring buffers of typed events stamped
//! with the emitting rank's clock, log2-bucketed duration histograms,
//! gauges, and exporters (Chrome `trace_event` JSON, flat JSONL, human
//! summary).
//!
//! Determinism contract: every event is stamped with the emitting rank's
//! virtual clock ([`crate::Ctx::now`] in virtual-time mode), each per-rank
//! ring is written only by its own rank thread, and the exporters format
//! timestamps as exact integers (nanoseconds) or fixed-decimal
//! microseconds — so two virtual-time runs with the same
//! [`crate::MachineConfig`] produce byte-identical trace files. In
//! [`crate::ExecMode::Concurrent`] mode events carry **real wall-clock
//! nanoseconds** from the machine's monotonic clock
//! (`scioto_det::MonoClock`); such traces are marked
//! [`Trace::wall_clock`], stamps are not reproducible across runs, and
//! the sync-pairing payload (lock generations, message seqs, barrier
//! epochs) remains exact — so race-checking and blame decomposition work
//! unchanged, while byte-identity claims apply to virtual time only.
//!
//! Hot-path cost is gated by [`TraceSink`]: the `Disabled` variant reduces
//! every emission to one branch, and event construction happens inside a
//! closure that is never called when tracing is off. Enabled emission is
//! lock-free: each rank's ring is a single-writer cell touched only by
//! that rank's thread, so concurrent-mode tracing never adds a lock to
//! the measured path (the overhead gate in `concurrent_obs` asserts it
//! stays non-perturbing).

use std::cell::UnsafeCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Number of log2 buckets in a [`VtHistogram`]: bucket 0 holds the value
/// 0, bucket `i >= 1` holds values in `[2^(i-1), 2^i - 1]`.
pub const HIST_BUCKETS: usize = 65;

/// Tracing configuration carried by [`crate::MachineConfig`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceConfig {
    /// Master switch. When false the machine runs with
    /// [`TraceSink::Disabled`] and pays one branch per emission site.
    pub enabled: bool,
    /// Capacity of each per-rank event ring. When a ring fills, the oldest
    /// events are overwritten and counted in [`Trace::dropped`].
    pub ring_capacity: usize,
    /// Events staged per rank before publication into its ring. Staged
    /// events publish when the batch fills, at kernel block/finish
    /// boundaries, and at [`TraceSink::finish`]; `<= 1` publishes every
    /// event immediately (the historical behaviour). Batching never
    /// changes trace *content* — staged events drain in emission order
    /// through the same ring, so overflow drops are counted identically —
    /// it only amortizes the per-event publication cost on the
    /// concurrent-mode hot path.
    pub batch: usize,
}

/// Default per-rank staging batch for [`TraceConfig::enabled`].
pub const DEFAULT_TRACE_BATCH: usize = 64;

impl TraceConfig {
    /// Tracing off (the default).
    pub fn disabled() -> Self {
        TraceConfig {
            enabled: false,
            ring_capacity: 0,
            batch: 0,
        }
    }

    /// Tracing on with the default ring capacity (65536 events per rank,
    /// ~1.5 MiB per rank) and batched publication
    /// ([`DEFAULT_TRACE_BATCH`] events).
    pub fn enabled() -> Self {
        TraceConfig {
            enabled: true,
            ring_capacity: 1 << 16,
            batch: DEFAULT_TRACE_BATCH,
        }
    }

    /// Replace the per-rank ring capacity.
    pub fn with_capacity(mut self, cap: usize) -> Self {
        self.ring_capacity = cap;
        self
    }

    /// Replace the staging batch size (`<= 1` disables batching: every
    /// event publishes into the ring immediately).
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch;
        self
    }
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig::disabled()
    }
}

/// Direction of a termination-detection wave event.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum WaveDir {
    /// Wave token propagating down the spanning tree.
    Down,
    /// Vote propagating up (the `black` flag carries the token colour).
    Up,
    /// Termination announced or observed.
    Term,
}

impl WaveDir {
    /// Stable lowercase name used by the exporters.
    pub fn name(self) -> &'static str {
        match self {
            WaveDir::Down => "down",
            WaveDir::Up => "up",
            WaveDir::Term => "term",
        }
    }
}

/// Kind of a one-sided (ARMCI-level) remote operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RemoteOpKind {
    /// Contiguous put.
    Put,
    /// Contiguous get.
    Get,
    /// Atomic accumulate.
    Acc,
    /// Atomic read-modify-write.
    Rmw,
}

impl RemoteOpKind {
    /// Stable lowercase name used by the exporters.
    pub fn name(self) -> &'static str {
        match self {
            RemoteOpKind::Put => "put",
            RemoteOpKind::Get => "get",
            RemoteOpKind::Acc => "acc",
            RemoteOpKind::Rmw => "rmw",
        }
    }

    /// Does this operation write the target memory?
    pub fn is_write(self) -> bool {
        !matches!(self, RemoteOpKind::Get)
    }

    /// Is this operation atomic by nature (acc/rmw execute under the
    /// target word's hot-word lock)?
    pub fn is_atomic(self) -> bool {
        matches!(self, RemoteOpKind::Acc | RemoteOpKind::Rmw)
    }
}

/// One typed trace event. Fixed-size (`Copy`) so ring storage is flat.
///
/// Duration-carrying events (`dur_ns`) are stamped at operation
/// *completion*: the operation's virtual-time span is `[t_ns - dur_ns,
/// t_ns]`. The analyzer (`scioto-analyze`) reconstructs per-rank
/// timelines from these spans; they nest like the call stack that
/// emitted them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A task callback started executing (`callback` is the handler index).
    TaskExecBegin {
        /// Registered callback index of the task.
        callback: u32,
        /// Rank that created (spawned) the task — `creator != rank` means
        /// the task migrated here via a steal or a remote add.
        creator: u32,
    },
    /// The matching end of a [`TraceEvent::TaskExecBegin`].
    TaskExecEnd {
        /// Registered callback index of the task.
        callback: u32,
    },
    /// A steal attempt against `victim` that obtained `got` tasks
    /// (`got == 0` is a failed attempt). Stamped at completion;
    /// `dur_ns` is the full round trip (victim lock, index read, task
    /// transfer, unlock — including any lock wait, which is also
    /// reported separately as a nested [`TraceEvent::LockWait`]).
    StealAttempt {
        /// Rank the steal targeted.
        victim: u32,
        /// Tasks actually stolen.
        got: u32,
        /// Virtual-time round trip of the whole attempt.
        dur_ns: u64,
    },
    /// A mutex acquire completed after `dur_ns` of waiting plus the
    /// acquire round trip. Stamped at completion.
    LockWait {
        /// Rank owning the acquired mutex.
        target: u32,
        /// Wait plus acquire cost, virtual ns.
        dur_ns: u64,
    },
    /// A machine-wide barrier episode completed on this rank. Stamped at
    /// the collective release; `dur_ns` spans this rank's arrival to the
    /// release (always emitted, even when zero, so the k-th BarrierWait
    /// on every rank is the same episode).
    BarrierWait {
        /// Release minus this rank's arrival, virtual ns.
        dur_ns: u64,
        /// Barrier generation: the `epoch`-th barrier episode of the run.
        /// All ranks participating in one episode carry the same epoch, so
        /// a happens-before consumer can join their clocks exactly.
        epoch: u64,
    },
    /// One termination-detection poll (`WaveDetector::progress`-level)
    /// completed, spanning `dur_ns`. Only emitted when `dur_ns > 0`.
    TdProgress {
        /// Virtual time consumed by the poll.
        dur_ns: u64,
    },
    /// The split queue released `moved` tasks from the private to the
    /// shared portion.
    SplitRelease {
        /// Tasks moved across the split.
        moved: u32,
    },
    /// The split queue reclaimed `moved` tasks from the shared portion.
    SplitReclaim {
        /// Tasks moved across the split.
        moved: u32,
    },
    /// A termination-detection wave event (see [`WaveDir`]).
    TdWave {
        /// Wave number.
        wave: u32,
        /// Down the tree, vote up, or termination.
        dir: WaveDir,
        /// Token colour for up-votes (black = work moved this wave).
        black: bool,
    },
    /// Queue occupancy sample: private (`local`) and stealable (`shared`)
    /// task counts.
    QueueDepth {
        /// Tasks in the owner-private portion.
        local: u32,
        /// Tasks in the shared (stealable) portion.
        shared: u32,
    },
    /// The rank parked waiting on a condition.
    Block,
    /// The rank issued a wake for `target`.
    Unblock {
        /// Rank being woken.
        target: u32,
    },
    /// A two-sided message was sent to `dst`.
    MsgSend {
        /// Destination rank.
        dst: u32,
        /// Payload bytes.
        bytes: u32,
        /// Per-destination delivery sequence number: the matching
        /// [`TraceEvent::MsgRecv`] on `dst` carries the same `seq`, giving
        /// the race engine an exact send→recv synchronization edge.
        seq: u64,
    },
    /// A two-sided message was received (dequeued) from `src`. Matches
    /// the [`TraceEvent::MsgSend`] with `dst == rank` and the same `seq`.
    MsgRecv {
        /// Source rank.
        src: u32,
        /// Delivery sequence number assigned at send time.
        seq: u64,
    },
    /// A one-sided remote operation against global memory at
    /// `(target, seg, offset)`.
    RemoteOp {
        /// Operation kind.
        kind: RemoteOpKind,
        /// Target rank.
        target: u32,
        /// Global-memory segment id (`Gmem::id`).
        seg: u32,
        /// Byte offset of the access within the target's segment slice.
        offset: u64,
        /// Bytes transferred.
        bytes: u32,
        /// Protocol-atomic put/get: a single-word access the runtime
        /// declares safe against concurrent plain accesses (lock-free
        /// index publishes of the split-queue protocol). Always true for
        /// acc/rmw kinds.
        atomic: bool,
    },
    /// An owner-side (local, non-ARMCI) access to global memory: the
    /// split-queue owner touching its own queue through
    /// `with_local_range`. Target is the emitting rank itself.
    LocalAccess {
        /// Global-memory segment id (`Gmem::id`).
        seg: u32,
        /// Byte offset of the access within this rank's segment slice.
        offset: u64,
        /// Bytes touched.
        bytes: u32,
        /// Write (true) or read (false).
        write: bool,
        /// Single-word access the protocol declares atomic.
        atomic: bool,
    },
    /// An ARMCI mutex was acquired (`seq`-th ownership of that mutex).
    /// Together with [`TraceEvent::LockRel`] this yields release→acquire
    /// synchronization edges: acquire `seq` is ordered after release
    /// `seq - 1` of the same `(target, set, idx)` mutex.
    LockAcq {
        /// Rank hosting the mutex.
        target: u32,
        /// Mutex-set id (creation order within the ARMCI world).
        set: u32,
        /// Mutex index within the set.
        idx: u32,
        /// Ownership generation of this mutex instance.
        seq: u64,
    },
    /// The matching release of a [`TraceEvent::LockAcq`] (same `seq`).
    LockRel {
        /// Rank hosting the mutex.
        target: u32,
        /// Mutex-set id (creation order within the ARMCI world).
        set: u32,
        /// Mutex index within the set.
        idx: u32,
        /// Ownership generation being ended.
        seq: u64,
    },
}

impl TraceEvent {
    /// Stable event name used by all exporters.
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::TaskExecBegin { .. } => "TaskExecBegin",
            TraceEvent::TaskExecEnd { .. } => "TaskExecEnd",
            TraceEvent::StealAttempt { .. } => "StealAttempt",
            TraceEvent::LockWait { .. } => "LockWait",
            TraceEvent::BarrierWait { .. } => "BarrierWait",
            TraceEvent::TdProgress { .. } => "TdProgress",
            TraceEvent::SplitRelease { .. } => "SplitRelease",
            TraceEvent::SplitReclaim { .. } => "SplitReclaim",
            TraceEvent::TdWave { .. } => "TdWave",
            TraceEvent::QueueDepth { .. } => "QueueDepth",
            TraceEvent::Block => "Block",
            TraceEvent::Unblock { .. } => "Unblock",
            TraceEvent::MsgSend { .. } => "MsgSend",
            TraceEvent::MsgRecv { .. } => "MsgRecv",
            TraceEvent::RemoteOp { .. } => "RemoteOp",
            TraceEvent::LocalAccess { .. } => "LocalAccess",
            TraceEvent::LockAcq { .. } => "LockAcq",
            TraceEvent::LockRel { .. } => "LockRel",
        }
    }

    /// Append the event's payload as JSON object members (no braces, no
    /// leading comma), e.g. `"victim":3,"got":2`. Empty for payload-free
    /// events.
    fn write_args(&self, out: &mut String) {
        match *self {
            TraceEvent::TaskExecBegin { callback, creator } => {
                let _ = write!(out, "\"callback\":{callback},\"creator\":{creator}");
            }
            TraceEvent::TaskExecEnd { callback } => {
                let _ = write!(out, "\"callback\":{callback}");
            }
            TraceEvent::StealAttempt { victim, got, dur_ns } => {
                let _ = write!(out, "\"victim\":{victim},\"got\":{got},\"dur\":{dur_ns}");
            }
            TraceEvent::LockWait { target, dur_ns } => {
                let _ = write!(out, "\"target\":{target},\"dur\":{dur_ns}");
            }
            TraceEvent::BarrierWait { dur_ns, epoch } => {
                let _ = write!(out, "\"dur\":{dur_ns},\"epoch\":{epoch}");
            }
            TraceEvent::TdProgress { dur_ns } => {
                let _ = write!(out, "\"dur\":{dur_ns}");
            }
            TraceEvent::SplitRelease { moved } | TraceEvent::SplitReclaim { moved } => {
                let _ = write!(out, "\"moved\":{moved}");
            }
            TraceEvent::TdWave { wave, dir, black } => {
                let _ = write!(
                    out,
                    "\"wave\":{wave},\"dir\":\"{}\",\"black\":{black}",
                    dir.name()
                );
            }
            TraceEvent::QueueDepth { local, shared } => {
                let _ = write!(out, "\"local\":{local},\"shared\":{shared}");
            }
            TraceEvent::Block => {}
            TraceEvent::Unblock { target } => {
                let _ = write!(out, "\"target\":{target}");
            }
            TraceEvent::MsgSend { dst, bytes, seq } => {
                let _ = write!(out, "\"dst\":{dst},\"bytes\":{bytes},\"seq\":{seq}");
            }
            TraceEvent::MsgRecv { src, seq } => {
                let _ = write!(out, "\"src\":{src},\"seq\":{seq}");
            }
            TraceEvent::RemoteOp {
                kind,
                target,
                seg,
                offset,
                bytes,
                atomic,
            } => {
                let _ = write!(
                    out,
                    "\"kind\":\"{}\",\"target\":{target},\"seg\":{seg},\"off\":{offset},\
                     \"bytes\":{bytes},\"atomic\":{atomic}",
                    kind.name()
                );
            }
            TraceEvent::LocalAccess {
                seg,
                offset,
                bytes,
                write,
                atomic,
            } => {
                let _ = write!(
                    out,
                    "\"seg\":{seg},\"off\":{offset},\"bytes\":{bytes},\
                     \"write\":{write},\"atomic\":{atomic}"
                );
            }
            TraceEvent::LockAcq { target, set, idx, seq }
            | TraceEvent::LockRel { target, set, idx, seq } => {
                let _ = write!(out, "\"target\":{target},\"set\":{set},\"idx\":{idx},\"seq\":{seq}");
            }
        }
    }
}

/// A [`TraceEvent`] plus the emitting rank's clock at emission.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StampedEvent {
    /// Nanoseconds: the rank's virtual clock in virtual-time mode, real
    /// wall-clock time since machine start in concurrent mode (see
    /// [`Trace::wall_clock`]).
    pub t_ns: u64,
    /// The event payload.
    pub event: TraceEvent,
}

/// Fixed-capacity ring: overwrites the oldest event when full.
#[derive(Debug, Default)]
struct RankRing {
    cap: usize,
    buf: Vec<StampedEvent>,
    /// Index of the oldest event once the ring has wrapped.
    next: usize,
    dropped: u64,
}

impl RankRing {
    fn with_capacity(cap: usize) -> Self {
        RankRing {
            cap,
            buf: Vec::new(),
            next: 0,
            dropped: 0,
        }
    }

    fn push(&mut self, e: StampedEvent) {
        if self.cap == 0 {
            self.dropped += 1;
        } else if self.buf.len() < self.cap {
            self.buf.push(e);
        } else {
            self.buf[self.next] = e;
            self.next = (self.next + 1) % self.cap;
            self.dropped += 1;
        }
    }

    /// Move a whole staged batch in. Content-identical to pushing each
    /// event in order; the common case (ring not yet wrapped, room for
    /// the lot) is one bulk append instead of a capacity check per event.
    fn push_batch(&mut self, staged: &mut Vec<StampedEvent>) {
        if self.next == 0 && self.buf.len() + staged.len() <= self.cap {
            self.buf.append(staged);
        } else {
            for e in staged.drain(..) {
                self.push(e);
            }
        }
    }

    /// Take the events in emission order (oldest surviving event first),
    /// leaving the ring empty. An unwrapped ring — the common case — is
    /// one buffer move, not a copy; this runs inside the measured span of
    /// the wall-clock overhead gate.
    fn take_chronological(&mut self) -> Vec<StampedEvent> {
        if self.next == 0 {
            return std::mem::take(&mut self.buf);
        }
        let mut v = Vec::with_capacity(self.buf.len());
        v.extend_from_slice(&self.buf[self.next..]);
        v.extend_from_slice(&self.buf[..self.next]);
        self.buf.clear();
        self.next = 0;
        v
    }
}

/// Log2-bucketed histogram of virtual-time durations (nanoseconds).
///
/// Bucketing is exact and integer-only, so merged histograms and their
/// summaries are deterministic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VtHistogram {
    buckets: [u64; HIST_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for VtHistogram {
    fn default() -> Self {
        VtHistogram {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl VtHistogram {
    fn bucket_of(v: u64) -> usize {
        (u64::BITS - v.leading_zeros()) as usize
    }

    /// Upper bound of bucket `i` (inclusive).
    fn bucket_upper(i: usize) -> u64 {
        if i == 0 {
            0
        } else if i >= 64 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &VtHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample (0 if empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample value (0.0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing the `q`-quantile, exact to
    /// within one power of two.
    ///
    /// Edge cases are defined (not panics): an empty histogram returns 0
    /// for every `q`; `q` is clamped to `[0, 1]` (so `q < 0`, `q > 1` and
    /// NaN behave like 0.0 / 1.0 / 0.0 respectively); `q == 0.0` returns
    /// the bound of the first non-empty bucket (the minimum's bucket);
    /// `q == 1.0` returns the exact maximum sample.
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        // NaN fails both comparisons below and clamps to 0.0.
        let q = if q >= 1.0 {
            return self.max;
        } else if q > 0.0 {
            q
        } else {
            0.0
        };
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= target {
                return Self::bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Per-bucket counts (index = log2 bucket, see [`HIST_BUCKETS`]).
    pub fn buckets(&self) -> &[u64; HIST_BUCKETS] {
        &self.buckets
    }

    /// Non-empty buckets as `(index, count)` pairs flattened into one
    /// array — the compact form the JSONL exporter writes.
    pub fn sparse_buckets(&self) -> Vec<u64> {
        let mut out = Vec::new();
        for (i, &c) in self.buckets.iter().enumerate() {
            if c > 0 {
                out.push(i as u64);
                out.push(c);
            }
        }
        out
    }

    /// Rebuild a histogram from its serialized parts: the sparse
    /// `(index, count)` pair array of [`VtHistogram::sparse_buckets`] plus
    /// the summary fields. Used by the JSONL re-parser; rejects bucket
    /// indices out of range or a ragged pair array.
    pub fn from_parts(sparse: &[u64], count: u64, sum: u64, min: u64, max: u64) -> Option<Self> {
        if sparse.len() % 2 != 0 {
            return None;
        }
        let mut h = VtHistogram {
            buckets: [0; HIST_BUCKETS],
            count,
            sum,
            min: if count == 0 { u64::MAX } else { min },
            max,
        };
        for pair in sparse.chunks_exact(2) {
            let i = usize::try_from(pair[0]).ok().filter(|&i| i < HIST_BUCKETS)?;
            h.buckets[i] = pair[1];
        }
        Some(h)
    }
}

/// A sampled gauge: tracks last, max and mean of the sampled values.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Gauge {
    /// Number of samples taken.
    pub samples: u64,
    /// Sum of all samples (for the mean).
    pub sum: u64,
    /// Largest sample.
    pub max: u64,
    /// Most recent sample.
    pub last: u64,
}

impl Gauge {
    fn record(&mut self, v: u64) {
        self.samples += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
        self.last = v;
    }

    /// Mean sampled value (0.0 if never sampled).
    pub fn mean(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.sum as f64 / self.samples as f64
        }
    }
}

/// Interior-mutable per-rank slot with a single-writer discipline instead
/// of a lock.
///
/// Safety contract (enforced by the kernel's emission paths, not the
/// type): during a run, slot `rank` is mutated only by that rank's own
/// thread — every `Kernel::emit`/`hist`/`gauge` call passes the caller's
/// own rank. Reads happen only in [`TraceSink::finish`], after
/// `Machine::run` has joined every rank thread (the join is the
/// happens-before edge that publishes the writes). In concurrent mode
/// this keeps trace emission lock-free on the measured path; in
/// virtual-time mode at most one rank runs at a time anyway.
struct RankCell<T>(UnsafeCell<T>);

// SAFETY: see the single-writer contract above — distinct threads never
// touch the same cell concurrently, and the final reads are ordered
// after all writes by thread join.
unsafe impl<T: Send> Sync for RankCell<T> {}

impl<T> RankCell<T> {
    fn new(v: T) -> Self {
        RankCell(UnsafeCell::new(v))
    }

    /// Mutate the slot. Caller must be the owning rank's thread (the
    /// cell's single writer).
    #[inline]
    fn with_mut<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        // SAFETY: single-writer contract (struct docs) — no other thread
        // holds a reference to this slot while its owner writes.
        f(unsafe { &mut *self.0.get() })
    }

    /// Read the slot. Caller must guarantee no concurrent writer — in
    /// practice, only after every rank thread has been joined.
    fn read(&self) -> &T {
        // SAFETY: callers only read after the run's threads are joined,
        // so all writes happened-before this borrow.
        unsafe { &*self.0.get() }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for RankCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RankCell").finish_non_exhaustive()
    }
}

/// Live per-rank trace storage. Each rank's ring/registries are touched
/// only by that rank's thread during a run ([`RankCell`]'s single-writer
/// contract), so emission takes no lock — a deliberate property for
/// concurrent mode, where a shared lock would perturb the timing the
/// trace is supposed to measure.
#[derive(Debug)]
pub struct TraceBuffers {
    rings: Vec<RankCell<RankRing>>,
    /// Per-rank staging buffers (empty when `batch <= 1`): events wait
    /// here and publish into the ring in batches, so the common emission
    /// path is a plain `Vec::push`.
    staged: Vec<RankCell<Vec<StampedEvent>>>,
    batch: usize,
    /// Metric registries are small (a handful of `&'static str` names per
    /// rank), so a linear Vec with a pointer-equality fast path beats a
    /// BTreeMap lookup per sample; [`TraceSink::finish`] converts to the
    /// sorted map form the exporters expect.
    hists: Vec<RankCell<Vec<(&'static str, VtHistogram)>>>,
    gauges: Vec<RankCell<Vec<(&'static str, Gauge)>>>,
}

impl TraceBuffers {
    /// Drain `rank`'s staged events, in emission order, into its ring.
    fn publish(&self, rank: usize) {
        self.staged[rank].with_mut(|s| {
            if s.is_empty() {
                return;
            }
            self.rings[rank].with_mut(|r| r.push_batch(s));
        });
    }
}

/// Find-or-insert `name` in a linear metric registry. Metric names are
/// `&'static str` constants, so repeat samples from the same call site
/// hit the pointer comparison; the content fallback covers equal names
/// spelled as different constants.
fn reg_entry<'a, T: Default>(reg: &'a mut Vec<(&'static str, T)>, name: &'static str) -> &'a mut T {
    let pos = reg.iter().position(|&(k, _)| {
        (k.as_ptr() == name.as_ptr() && k.len() == name.len()) || k == name
    });
    match pos {
        Some(i) => &mut reg[i].1,
        None => {
            reg.push((name, T::default()));
            &mut reg.last_mut().expect("just pushed").1
        }
    }
}

/// The emission gate held by the scheduling kernel. `Disabled` makes
/// every emission site a single branch; event construction is deferred
/// into a closure that never runs when tracing is off.
#[derive(Debug)]
pub enum TraceSink {
    /// Tracing off: emissions are a branch on a bool.
    Disabled,
    /// Tracing on: events land in per-rank rings.
    Enabled(TraceBuffers),
}

impl TraceSink {
    /// Build a sink for `ranks` ranks according to `cfg`.
    pub fn new(cfg: &TraceConfig, ranks: usize) -> Self {
        if !cfg.enabled {
            return TraceSink::Disabled;
        }
        let stage_cap = if cfg.batch > 1 { cfg.batch } else { 0 };
        TraceSink::Enabled(TraceBuffers {
            rings: (0..ranks)
                .map(|_| RankCell::new(RankRing::with_capacity(cfg.ring_capacity)))
                .collect(),
            staged: (0..ranks)
                .map(|_| RankCell::new(Vec::with_capacity(stage_cap)))
                .collect(),
            batch: cfg.batch,
            hists: (0..ranks).map(|_| RankCell::new(Vec::new())).collect(),
            gauges: (0..ranks).map(|_| RankCell::new(Vec::new())).collect(),
        })
    }

    /// Is tracing on?
    #[inline]
    pub fn is_enabled(&self) -> bool {
        matches!(self, TraceSink::Enabled(_))
    }

    /// Record an event for `rank` at time `t_ns`. `make` is only invoked
    /// when tracing is enabled. Must be called from `rank`'s own thread
    /// ([`RankCell`]'s single-writer contract) — every kernel emission
    /// path passes the caller's own rank.
    #[inline]
    pub fn emit(&self, rank: usize, t_ns: u64, make: impl FnOnce() -> TraceEvent) {
        if let TraceSink::Enabled(b) = self {
            let e = StampedEvent {
                t_ns,
                event: make(),
            };
            if b.batch <= 1 {
                b.rings[rank].with_mut(|r| r.push(e));
            } else {
                let full = b.staged[rank].with_mut(|s| {
                    s.push(e);
                    s.len() >= b.batch
                });
                if full {
                    b.publish(rank);
                }
            }
        }
    }

    /// Publish `rank`'s staged events into its ring (no-op when disabled,
    /// unbatched, or nothing is staged). Called by the kernel at park and
    /// finish boundaries; own-thread only, like [`TraceSink::emit`].
    #[inline]
    pub fn flush(&self, rank: usize) {
        if let TraceSink::Enabled(b) = self {
            if b.batch > 1 {
                b.publish(rank);
            }
        }
    }

    /// Record a histogram sample for `rank` under `name` (own-thread only,
    /// like [`TraceSink::emit`]).
    #[inline]
    pub fn hist(&self, rank: usize, name: &'static str, v: u64) {
        if let TraceSink::Enabled(b) = self {
            b.hists[rank].with_mut(|h| reg_entry(h, name).record(v));
        }
    }

    /// Record a gauge sample for `rank` under `name` (own-thread only,
    /// like [`TraceSink::emit`]).
    #[inline]
    pub fn gauge(&self, rank: usize, name: &'static str, v: u64) {
        if let TraceSink::Enabled(b) = self {
            b.gauges[rank].with_mut(|g| reg_entry(g, name).record(v));
        }
    }

    /// Freeze the sink into an exportable [`Trace`] (None when disabled).
    /// Caller must have joined every rank thread first — `Machine::run`
    /// only calls this after the run's thread scope (or fiber set) has
    /// completed, which publishes all per-rank writes.
    pub fn finish(&self) -> Option<Trace> {
        let TraceSink::Enabled(b) = self else {
            return None;
        };
        let mut events = Vec::with_capacity(b.rings.len());
        let mut dropped = Vec::with_capacity(b.rings.len());
        for (rank, ring) in b.rings.iter().enumerate() {
            // Any still-staged events (a rank whose last boundary wasn't a
            // park) publish here, before the ring is drained. Mutating the
            // cells is safe: finish() runs after every rank thread joined.
            b.publish(rank);
            ring.with_mut(|r| {
                events.push(r.take_chronological());
                dropped.push(r.dropped);
            });
        }
        Some(Trace {
            events,
            dropped,
            final_clock_ns: Vec::new(),
            wall_clock: false,
            // The linear live registries convert to sorted maps here, so
            // exports keep their name-ordered, byte-stable form.
            hists: b
                .hists
                .iter()
                .map(|h| {
                    h.read()
                        .iter()
                        .map(|(k, v)| (k.to_string(), v.clone()))
                        .collect()
                })
                .collect(),
            gauges: b
                .gauges
                .iter()
                .map(|g| g.read().iter().map(|&(k, v)| (k.to_string(), v)).collect())
                .collect(),
        })
    }
}

/// A frozen trace of one completed run: per-rank event timelines plus the
/// metric registries. Attached to [`crate::Report::trace`] when the
/// machine ran with tracing enabled.
#[derive(Clone, Debug)]
pub struct Trace {
    /// Per-rank events in emission order (oldest surviving first).
    pub events: Vec<Vec<StampedEvent>>,
    /// Per-rank count of events lost to ring overflow.
    pub dropped: Vec<u64>,
    /// Each rank's elapsed time (final virtual clock, or the thread's
    /// measured wall-clock span in concurrent mode). Populated by
    /// `Machine::run`; empty for hand-built traces — consumers should
    /// fall back to the rank's latest event timestamp (see
    /// [`Trace::elapsed_ns`]).
    pub final_clock_ns: Vec<u64>,
    /// True when the trace was recorded in [`crate::ExecMode::Concurrent`]:
    /// timestamps are real wall-clock nanoseconds since machine start
    /// (monotonic per run, NOT reproducible across runs, and not
    /// replayable on the virtual-time kernel). Serialized as
    /// `"clock":"wall"` in the JSONL meta header and the Chrome
    /// `sciotoMeta` trailer; absent for virtual-time traces so their
    /// exports stay byte-identical to earlier schema versions.
    pub wall_clock: bool,
    /// Per-rank virtual-time histograms, keyed by metric name.
    pub hists: Vec<BTreeMap<String, VtHistogram>>,
    /// Per-rank gauges, keyed by metric name.
    pub gauges: Vec<BTreeMap<String, Gauge>>,
}

impl Trace {
    /// Number of ranks this trace covers.
    pub fn nranks(&self) -> usize {
        self.events.len()
    }

    /// Events recorded by `rank`.
    pub fn events_for(&self, rank: usize) -> &[StampedEvent] {
        &self.events[rank]
    }

    /// Total events across all ranks.
    pub fn total_events(&self) -> usize {
        self.events.iter().map(Vec::len).sum()
    }

    /// Elapsed virtual time of `rank`: its final clock when recorded,
    /// otherwise the timestamp of its latest event (0 if none).
    pub fn elapsed_ns(&self, rank: usize) -> u64 {
        self.final_clock_ns
            .get(rank)
            .copied()
            .unwrap_or_else(|| self.events[rank].iter().map(|e| e.t_ns).max().unwrap_or(0))
    }

    /// Histogram `name` merged across all ranks (None if never recorded).
    pub fn merged_hist(&self, name: &str) -> Option<VtHistogram> {
        let mut out: Option<VtHistogram> = None;
        for per_rank in &self.hists {
            if let Some(h) = per_rank.get(name) {
                out.get_or_insert_with(VtHistogram::default).merge(h);
            }
        }
        out
    }

    /// Chrome `trace_event` JSON: one track (tid) per rank, `B`/`E` pairs
    /// for task execution, complete (`X`) events for duration-carrying
    /// records (steal attempts, lock waits, barrier waits, TD polls),
    /// counters for queue depth, instants for everything else. A
    /// `sciotoMeta` top-level member (ignored by viewers) carries per-rank
    /// drop counts and final clocks. Open in `chrome://tracing` or
    /// Perfetto.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::with_capacity(64 + 96 * self.total_events());
        out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n");
        let _ = write!(
            out,
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\
             \"args\":{{\"name\":\"scioto virtual machine\"}}}}"
        );
        for rank in 0..self.nranks() {
            let _ = write!(
                out,
                ",\n{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{rank},\
                 \"args\":{{\"name\":\"rank {rank}\"}}}}"
            );
        }
        for (rank, events) in self.events.iter().enumerate() {
            for e in events {
                out.push_str(",\n");
                chrome_event(&mut out, rank, e);
            }
        }
        out.push_str("\n],\"sciotoMeta\":{\"dropped\":[");
        for (i, d) in self.dropped.iter().enumerate() {
            let _ = write!(out, "{}{d}", if i == 0 { "" } else { "," });
        }
        out.push_str("],\"final_clock_ns\":[");
        for (i, c) in self.final_clock_ns.iter().enumerate() {
            let _ = write!(out, "{}{c}", if i == 0 { "" } else { "," });
        }
        out.push(']');
        if self.wall_clock {
            out.push_str(",\"clock\":\"wall\"");
        }
        out.push_str("}}\n");
        out
    }

    /// Flat JSONL dump: a meta header line (`{"meta":...}` with rank
    /// count, per-rank drop counts and final clocks), one line per
    /// histogram and gauge registry entry (rank-major, name order), then
    /// one JSON object per event, rank-major then chronological,
    /// timestamps in exact virtual nanoseconds. The header and metric
    /// lines make a JSONL file self-contained for re-analysis
    /// (`scioto-analyze` reads all of it back, distributions included).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(64 * self.total_events());
        let _ = write!(out, "{{\"meta\":\"scioto-trace\",\"version\":3,\"ranks\":{}", self.nranks());
        out.push_str(",\"dropped\":[");
        for (i, d) in self.dropped.iter().enumerate() {
            let _ = write!(out, "{}{d}", if i == 0 { "" } else { "," });
        }
        out.push_str("],\"final_clock_ns\":[");
        for (i, c) in self.final_clock_ns.iter().enumerate() {
            let _ = write!(out, "{}{c}", if i == 0 { "" } else { "," });
        }
        out.push(']');
        if self.wall_clock {
            // Wall-clock (concurrent-mode) marker: consumers classify the
            // trace as non-replayable real time. Omitted for virtual-time
            // traces so their exports stay byte-identical.
            out.push_str(",\"clock\":\"wall\"");
        }
        out.push_str("}\n");
        for (rank, per_rank) in self.hists.iter().enumerate() {
            for (name, h) in per_rank {
                let _ = write!(
                    out,
                    "{{\"hist\":\"{name}\",\"rank\":{rank},\"count\":{},\"sum\":{},\
                     \"min\":{},\"max\":{},\"buckets\":[",
                    h.count(),
                    h.sum(),
                    h.min(),
                    h.max()
                );
                for (i, v) in h.sparse_buckets().iter().enumerate() {
                    let _ = write!(out, "{}{v}", if i == 0 { "" } else { "," });
                }
                out.push_str("]}\n");
            }
        }
        for (rank, per_rank) in self.gauges.iter().enumerate() {
            for (name, g) in per_rank {
                let _ = write!(
                    out,
                    "{{\"gauge\":\"{name}\",\"rank\":{rank},\"samples\":{},\"sum\":{},\
                     \"max\":{},\"last\":{}}}\n",
                    g.samples, g.sum, g.max, g.last
                );
            }
        }
        for (rank, events) in self.events.iter().enumerate() {
            for e in events {
                let _ = write!(out, "{{\"rank\":{rank},\"t\":{},\"ev\":\"{}\"", e.t_ns, e.event.name());
                let mut args = String::new();
                e.event.write_args(&mut args);
                if !args.is_empty() {
                    out.push(',');
                    out.push_str(&args);
                }
                out.push_str("}\n");
            }
        }
        out
    }

    /// Human-readable summary: per-rank event totals, global per-kind
    /// counts, histogram and gauge digests.
    pub fn summary(&self) -> String {
        let n = self.nranks();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "== trace summary: {n} ranks, {} events, {} dropped ==",
            self.total_events(),
            self.dropped.iter().sum::<u64>()
        );
        if self.wall_clock {
            let _ = writeln!(
                out,
                "clock: wall (concurrent mode — timestamps are real ns, \
                 not reproducible across runs)"
            );
        }
        let _ = writeln!(out, "{:>6}  {:>10}  {:>10}", "rank", "events", "dropped");
        for r in 0..n {
            let _ = writeln!(out, "{r:>6}  {:>10}  {:>10}", self.events[r].len(), self.dropped[r]);
        }
        let total_dropped: u64 = self.dropped.iter().sum();
        if total_dropped > 0 {
            let ranks_hit = self.dropped.iter().filter(|&&d| d > 0).count();
            let _ = writeln!(
                out,
                "WARNING: ring overflow dropped {total_dropped} event(s) on \
                 {ranks_hit} rank(s); timelines are truncated — rerun with a \
                 larger ring capacity (TraceConfig::with_capacity / --trace-ring)"
            );
        }
        let mut kinds: BTreeMap<&'static str, u64> = BTreeMap::new();
        for events in &self.events {
            for e in events {
                *kinds.entry(e.event.name()).or_default() += 1;
            }
        }
        let _ = writeln!(out, "events by kind:");
        for (k, c) in &kinds {
            let _ = writeln!(out, "  {k:<16} {c}");
        }
        let mut hist_names: Vec<&str> = Vec::new();
        for per_rank in &self.hists {
            for k in per_rank.keys() {
                if !hist_names.contains(&k.as_str()) {
                    hist_names.push(k);
                }
            }
        }
        hist_names.sort_unstable();
        if !hist_names.is_empty() {
            let _ = writeln!(out, "histograms (virtual ns, merged across ranks):");
            for name in hist_names {
                if let Some(h) = self.merged_hist(name) {
                    let _ = writeln!(
                        out,
                        "  {name:<16} count={} mean={:.0} p50<={} max={}",
                        h.count(),
                        h.mean(),
                        h.quantile_upper_bound(0.5),
                        h.max()
                    );
                }
            }
        }
        let mut gauge_names: Vec<&str> = Vec::new();
        for per_rank in &self.gauges {
            for k in per_rank.keys() {
                if !gauge_names.contains(&k.as_str()) {
                    gauge_names.push(k);
                }
            }
        }
        gauge_names.sort_unstable();
        if !gauge_names.is_empty() {
            let _ = writeln!(out, "gauges (mean/max over all ranks' samples):");
            for name in gauge_names {
                let mut samples = 0u64;
                let mut sum = 0u64;
                let mut max = 0u64;
                for per_rank in &self.gauges {
                    if let Some(g) = per_rank.get(name) {
                        samples += g.samples;
                        sum = sum.saturating_add(g.sum);
                        max = max.max(g.max);
                    }
                }
                let mean = if samples == 0 {
                    0.0
                } else {
                    sum as f64 / samples as f64
                };
                let _ = writeln!(out, "  {name:<16} samples={samples} mean={mean:.2} max={max}");
            }
        }
        out
    }
}

/// Format virtual nanoseconds as the fixed-decimal microseconds Chrome's
/// `ts` field expects. Integer arithmetic only, so output is
/// deterministic (no float formatting).
fn ts_us(t_ns: u64) -> String {
    format!("{}.{:03}", t_ns / 1_000, t_ns % 1_000)
}

fn chrome_event(out: &mut String, rank: usize, e: &StampedEvent) {
    let ts = ts_us(e.t_ns);
    match e.event {
        TraceEvent::TaskExecBegin { callback, creator } => {
            let _ = write!(
                out,
                "{{\"name\":\"TaskExec\",\"cat\":\"task\",\"ph\":\"B\",\"ts\":{ts},\
                 \"pid\":0,\"tid\":{rank},\
                 \"args\":{{\"callback\":{callback},\"creator\":{creator}}}}}"
            );
        }
        TraceEvent::StealAttempt { dur_ns, .. }
        | TraceEvent::LockWait { dur_ns, .. }
        | TraceEvent::BarrierWait { dur_ns, .. }
        | TraceEvent::TdProgress { dur_ns } => {
            // Stamped at completion: render as a complete (X) event whose
            // ts is the span start.
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"cat\":\"rt\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":0,\"tid\":{rank}",
                e.event.name(),
                ts_us(e.t_ns.saturating_sub(dur_ns)),
                ts_us(dur_ns)
            );
            let mut args = String::new();
            e.event.write_args(&mut args);
            if !args.is_empty() {
                let _ = write!(out, ",\"args\":{{{args}}}");
            }
            out.push('}');
        }
        TraceEvent::TaskExecEnd { .. } => {
            let _ = write!(
                out,
                "{{\"name\":\"TaskExec\",\"cat\":\"task\",\"ph\":\"E\",\"ts\":{ts},\
                 \"pid\":0,\"tid\":{rank}}}"
            );
        }
        TraceEvent::QueueDepth { local, shared } => {
            let _ = write!(
                out,
                "{{\"name\":\"queue depth r{rank}\",\"ph\":\"C\",\"ts\":{ts},\
                 \"pid\":0,\"tid\":{rank},\
                 \"args\":{{\"local\":{local},\"shared\":{shared}}}}}"
            );
        }
        ev => {
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"cat\":\"rt\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts},\
                 \"pid\":0,\"tid\":{rank}",
                ev.name()
            );
            let mut args = String::new();
            ev.write_args(&mut args);
            if !args.is_empty() {
                let _ = write!(out, ",\"args\":{{{args}}}");
            }
            out.push('}');
        }
    }
}

/// Validate that `s` is one well-formed JSON document. Returns a byte
/// offset and description of the first error. Hand-rolled (the build is
/// hermetic — no serde); used by tests and the `trace_check` tool to
/// prove exported traces parse.
pub fn validate_json(s: &str) -> Result<(), String> {
    let mut p = JsonParser {
        b: s.as_bytes(),
        i: 0,
    };
    p.ws();
    p.value()?;
    p.ws();
    if p.i != p.b.len() {
        return Err(format!("trailing data at byte {}", p.i));
    }
    Ok(())
}

struct JsonParser<'a> {
    b: &'a [u8],
    i: usize,
}

impl JsonParser<'_> {
    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.i)
    }

    fn value(&mut self) -> Result<(), String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &str) -> Result<(), String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(())
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.i += 1; // consume '{'
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected object key"));
            }
            self.string()?;
            self.ws();
            if self.peek() != Some(b':') {
                return Err(self.err("expected ':'"));
            }
            self.i += 1;
            self.ws();
            self.value()?;
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.i += 1; // consume '['
        self.ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.ws();
            self.value()?;
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.i += 1; // consume '"'
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.i += 1;
                        }
                        Some(b'u') => {
                            self.i += 1;
                            for _ in 0..4 {
                                if !self.peek().is_some_and(|c| c.is_ascii_hexdigit()) {
                                    return Err(self.err("bad \\u escape"));
                                }
                                self.i += 1;
                            }
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control char in string")),
                Some(_) => self.i += 1,
            }
        }
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        match self.peek() {
            Some(b'0') => self.i += 1,
            Some(c) if c.is_ascii_digit() => {
                while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                    self.i += 1;
                }
            }
            _ => return Err(self.err("expected digit")),
        }
        if self.peek() == Some(b'.') {
            self.i += 1;
            if !self.peek().is_some_and(|c| c.is_ascii_digit()) {
                return Err(self.err("expected fraction digit"));
            }
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.i += 1;
            }
            if !self.peek().is_some_and(|c| c.is_ascii_digit()) {
                return Err(self.err("expected exponent digit"));
            }
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic_trace() -> Trace {
        let sink = TraceSink::new(&TraceConfig::enabled().with_capacity(8), 2);
        sink.emit(0, 10, || TraceEvent::TaskExecBegin {
            callback: 1,
            creator: 1,
        });
        sink.emit(0, 50, || TraceEvent::TaskExecEnd { callback: 1 });
        sink.emit(0, 60, || TraceEvent::StealAttempt {
            victim: 1,
            got: 2,
            dur_ns: 8,
        });
        sink.emit(1, 5, || TraceEvent::TdWave {
            wave: 1,
            dir: WaveDir::Down,
            black: false,
        });
        sink.emit(1, 7, || TraceEvent::QueueDepth {
            local: 3,
            shared: 1,
        });
        sink.hist(0, "task_exec_ns", 40);
        sink.gauge(1, "queue_local", 3);
        let mut t = sink.finish().expect("enabled sink yields a trace");
        t.final_clock_ns = vec![60, 7];
        t
    }

    #[test]
    fn disabled_sink_skips_construction_and_yields_no_trace() {
        let sink = TraceSink::new(&TraceConfig::disabled(), 2);
        assert!(!sink.is_enabled());
        sink.emit(0, 0, || panic!("closure must not run when disabled"));
        sink.hist(0, "h", 1);
        sink.gauge(0, "g", 1);
        assert!(sink.finish().is_none());
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let mut r = RankRing::with_capacity(3);
        for t in 0..5u64 {
            r.push(StampedEvent {
                t_ns: t,
                event: TraceEvent::Block,
            });
        }
        assert_eq!(r.dropped, 2);
        let chron: Vec<u64> = r.take_chronological().iter().map(|e| e.t_ns).collect();
        assert_eq!(chron, vec![2, 3, 4]);
        assert!(r.take_chronological().is_empty(), "take drains the ring");
    }

    #[test]
    fn zero_capacity_ring_drops_everything() {
        let mut r = RankRing::with_capacity(0);
        r.push(StampedEvent {
            t_ns: 1,
            event: TraceEvent::Block,
        });
        assert_eq!(r.dropped, 1);
        assert!(r.take_chronological().is_empty());
    }

    #[test]
    fn histogram_buckets_powers_of_two() {
        let mut h = VtHistogram::default();
        for v in [0, 1, 2, 3, 4, 1_000, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.buckets()[0], 1); // 0
        assert_eq!(h.buckets()[1], 1); // 1
        assert_eq!(h.buckets()[2], 2); // 2,3
        assert_eq!(h.buckets()[3], 1); // 4
        assert_eq!(h.buckets()[10], 1); // 1000 in [512,1023]
        assert_eq!(h.buckets()[64], 1); // u64::MAX
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), u64::MAX);
    }

    #[test]
    fn histogram_quantile_and_merge() {
        let mut a = VtHistogram::default();
        let mut b = VtHistogram::default();
        for _ in 0..9 {
            a.record(10); // bucket [8,15]
        }
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 10);
        assert_eq!(a.quantile_upper_bound(0.5), 15);
        assert_eq!(a.quantile_upper_bound(1.0), 1_000_000);
        let empty = VtHistogram::default();
        assert_eq!(empty.quantile_upper_bound(0.5), 0);
        assert_eq!(empty.mean(), 0.0);
        assert_eq!(empty.min(), 0);
    }

    #[test]
    fn gauge_tracks_last_max_mean() {
        let mut g = Gauge::default();
        for v in [4, 10, 1] {
            g.record(v);
        }
        assert_eq!(g.last, 1);
        assert_eq!(g.max, 10);
        assert!((g.mean() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn chrome_export_parses_and_has_rank_tracks() {
        let t = synthetic_trace();
        let json = t.to_chrome_json();
        validate_json(&json).expect("chrome export must be valid JSON");
        assert!(json.contains("\"name\":\"rank 0\""));
        assert!(json.contains("\"name\":\"rank 1\""));
        assert!(json.contains("\"ph\":\"B\""));
        assert!(json.contains("\"ph\":\"E\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"victim\":1"));
        // StealAttempt carries a duration: rendered as a complete event
        // starting at t - dur (60 - 8 = 52 ns).
        assert!(json.contains("\"ph\":\"X\",\"ts\":0.052,\"dur\":0.008"));
        // Per-rank drop counts and final clocks ride along for tools.
        assert!(json.contains("\"sciotoMeta\":{\"dropped\":[0,0],\"final_clock_ns\":[60,7]}"));
        // ts stamps are fixed-decimal microseconds derived from integer ns.
        assert!(json.contains("\"ts\":0.010"));
    }

    #[test]
    fn jsonl_export_lines_each_parse() {
        let t = synthetic_trace();
        let jsonl = t.to_jsonl();
        assert_eq!(
            jsonl.lines().count(),
            8,
            "meta header + 1 hist + 1 gauge + 5 events"
        );
        for line in jsonl.lines() {
            validate_json(line).expect("every JSONL line must parse");
        }
        let meta = jsonl.lines().next().unwrap();
        assert!(meta.contains("\"meta\":\"scioto-trace\""));
        assert!(meta.contains("\"ranks\":2"));
        assert!(meta.contains("\"final_clock_ns\":[60,7]"));
        assert!(jsonl.contains("\"ev\":\"TdWave\""));
        assert!(jsonl.contains("\"dir\":\"down\""));
        assert!(jsonl.contains("\"victim\":1,\"got\":2,\"dur\":8"));
        // Metric registries ride along as their own lines.
        assert!(jsonl.contains(
            "{\"hist\":\"task_exec_ns\",\"rank\":0,\"count\":1,\"sum\":40,\
             \"min\":40,\"max\":40,\"buckets\":[6,1]}"
        ));
        assert!(jsonl.contains(
            "{\"gauge\":\"queue_local\",\"rank\":1,\"samples\":1,\"sum\":3,\
             \"max\":3,\"last\":3}"
        ));
    }

    #[test]
    fn histogram_from_parts_round_trips() {
        let mut h = VtHistogram::default();
        for v in [0, 7, 7, 1_000, u64::MAX] {
            h.record(v);
        }
        let back = VtHistogram::from_parts(
            &h.sparse_buckets(),
            h.count(),
            h.sum(),
            h.min(),
            h.max(),
        )
        .expect("round trip");
        assert_eq!(back.buckets(), h.buckets());
        assert_eq!(back.count(), h.count());
        assert_eq!(back.sum(), h.sum());
        assert_eq!(back.min(), h.min());
        assert_eq!(back.max(), h.max());
        assert_eq!(back.quantile_upper_bound(0.5), h.quantile_upper_bound(0.5));
        // Ragged pair arrays and out-of-range indices are rejected.
        assert!(VtHistogram::from_parts(&[1], 1, 1, 1, 1).is_none());
        assert!(VtHistogram::from_parts(&[65, 1], 1, 1, 1, 1).is_none());
    }

    #[test]
    fn sync_and_access_events_serialize_their_fields() {
        let sink = TraceSink::new(&TraceConfig::enabled(), 2);
        sink.emit(0, 10, || TraceEvent::LockAcq { target: 1, set: 0, idx: 3, seq: 2 });
        sink.emit(0, 20, || TraceEvent::RemoteOp {
            kind: RemoteOpKind::Put,
            target: 1,
            seg: 4,
            offset: 128,
            bytes: 8,
            atomic: true,
        });
        sink.emit(0, 30, || TraceEvent::LockRel { target: 1, set: 0, idx: 3, seq: 2 });
        sink.emit(1, 5, || TraceEvent::LocalAccess {
            seg: 4,
            offset: 136,
            bytes: 16,
            write: true,
            atomic: false,
        });
        sink.emit(1, 8, || TraceEvent::MsgSend { dst: 0, bytes: 24, seq: 7 });
        sink.emit(1, 9, || TraceEvent::MsgRecv { src: 0, seq: 7 });
        sink.emit(1, 12, || TraceEvent::BarrierWait { dur_ns: 4, epoch: 1 });
        let t = sink.finish().unwrap();
        let jsonl = t.to_jsonl();
        for line in jsonl.lines() {
            validate_json(line).expect("every JSONL line must parse");
        }
        assert!(jsonl.contains(
            "\"ev\":\"LockAcq\",\"target\":1,\"set\":0,\"idx\":3,\"seq\":2"
        ));
        assert!(jsonl.contains(
            "\"ev\":\"RemoteOp\",\"kind\":\"put\",\"target\":1,\"seg\":4,\"off\":128,\
             \"bytes\":8,\"atomic\":true"
        ));
        assert!(jsonl.contains(
            "\"ev\":\"LocalAccess\",\"seg\":4,\"off\":136,\"bytes\":16,\
             \"write\":true,\"atomic\":false"
        ));
        assert!(jsonl.contains("\"ev\":\"MsgSend\",\"dst\":0,\"bytes\":24,\"seq\":7"));
        assert!(jsonl.contains("\"ev\":\"MsgRecv\",\"src\":0,\"seq\":7"));
        assert!(jsonl.contains("\"ev\":\"BarrierWait\",\"dur\":4,\"epoch\":1"));
        // The chrome exporter must also accept every new variant.
        validate_json(&t.to_chrome_json()).expect("chrome export must be valid JSON");
    }

    #[test]
    fn elapsed_falls_back_to_latest_event_when_clocks_missing() {
        let mut t = synthetic_trace();
        assert_eq!(t.elapsed_ns(0), 60);
        t.final_clock_ns.clear();
        assert_eq!(t.elapsed_ns(0), 60);
        assert_eq!(t.elapsed_ns(1), 7);
    }

    #[test]
    fn summary_warns_on_ring_overflow() {
        let sink = TraceSink::new(&TraceConfig::enabled().with_capacity(2), 1);
        for t in 0..5u64 {
            sink.emit(0, t, || TraceEvent::Block);
        }
        let trace = sink.finish().unwrap();
        assert_eq!(trace.dropped, vec![3]);
        let s = trace.summary();
        assert!(s.contains("WARNING: ring overflow dropped 3 event(s) on 1 rank(s)"));
        // A clean trace must not warn.
        assert!(!synthetic_trace().summary().contains("WARNING"));
    }

    #[test]
    fn batched_publication_is_content_identical_to_unbatched() {
        // Same event stream staged through a pending batch vs. published
        // one-by-one: identical events, order, and JSONL bytes.
        let emit_all = |sink: &TraceSink| {
            for t in 0..10u64 {
                sink.emit(0, t, || TraceEvent::TdProgress { dur_ns: t });
                sink.emit(1, t * 2, || TraceEvent::Block);
            }
        };
        let unbatched = TraceSink::new(&TraceConfig::enabled().with_batch(1), 2);
        emit_all(&unbatched);
        let batched = TraceSink::new(&TraceConfig::enabled().with_batch(4), 2);
        emit_all(&batched);
        let (a, b) = (unbatched.finish().unwrap(), batched.finish().unwrap());
        assert_eq!(a.to_jsonl(), b.to_jsonl());
        assert_eq!(a.dropped, b.dropped);
    }

    #[test]
    fn ring_overflow_during_pending_batch_counts_drops_identically() {
        // Capacity 2, seven events, batch 4: the flushes push through the
        // same ring as the unbatched path, so the oldest events fall out
        // and the drop counter matches exactly.
        let run = |batch: usize| {
            let sink = TraceSink::new(
                &TraceConfig::enabled().with_capacity(2).with_batch(batch),
                1,
            );
            for t in 0..7u64 {
                sink.emit(0, t, || TraceEvent::Block);
            }
            sink.finish().unwrap()
        };
        let (unbatched, batched) = (run(1), run(4));
        assert_eq!(unbatched.dropped, vec![5]);
        assert_eq!(batched.dropped, unbatched.dropped);
        // Survivors are the newest events on every surface.
        assert_eq!(unbatched.to_jsonl(), batched.to_jsonl());
        assert!(batched
            .summary()
            .contains("WARNING: ring overflow dropped 5 event(s) on 1 rank(s)"));
    }

    #[test]
    fn finish_flushes_a_partial_batch_in_order() {
        // 3 events staged against batch 64: nothing reaches the ring until
        // finish(), which must drain the stage in emission order.
        let sink = TraceSink::new(&TraceConfig::enabled().with_batch(64), 1);
        for t in [5u64, 9, 11] {
            sink.emit(0, t, || TraceEvent::TdProgress { dur_ns: t });
        }
        let trace = sink.finish().unwrap();
        let stamps: Vec<u64> = trace.events_for(0).iter().map(|e| e.t_ns).collect();
        assert_eq!(stamps, vec![5, 9, 11]);
        assert_eq!(trace.dropped, vec![0]);
    }

    #[test]
    fn explicit_flush_publishes_the_stage() {
        let sink = TraceSink::new(&TraceConfig::enabled().with_batch(64), 2);
        sink.emit(0, 3, || TraceEvent::Block);
        sink.flush(0);
        sink.emit(0, 4, || TraceEvent::Block);
        // Rank 1 never flushes explicitly; finish() covers it.
        sink.emit(1, 7, || TraceEvent::Block);
        let trace = sink.finish().unwrap();
        assert_eq!(trace.events_for(0).len(), 2);
        assert_eq!(trace.events_for(1).len(), 1);
    }

    #[test]
    fn wall_clock_marker_rides_in_both_exports() {
        let mut t = synthetic_trace();
        t.wall_clock = true;
        let jsonl = t.to_jsonl();
        let meta = jsonl.lines().next().unwrap();
        validate_json(meta).expect("wall-clock meta header must parse");
        assert!(meta.contains("\"clock\":\"wall\""));
        let chrome = t.to_chrome_json();
        validate_json(&chrome).expect("wall-clock chrome export must parse");
        assert!(chrome
            .contains("\"sciotoMeta\":{\"dropped\":[0,0],\"final_clock_ns\":[60,7],\"clock\":\"wall\"}"));
        assert!(t.summary().contains("clock: wall"));
        // Virtual-time traces must NOT carry the marker: their exports are
        // pinned byte-identical across engines and schema versions.
        let vt = synthetic_trace();
        assert!(!vt.to_jsonl().contains("\"clock\""));
        assert!(!vt.to_chrome_json().contains("\"clock\""));
    }

    #[test]
    fn rings_take_concurrent_single_writer_emission() {
        // One writer thread per rank, all emitting simultaneously — the
        // exact access pattern of a concurrent-mode run against the
        // lock-free RankCell rings. Nothing may be lost or torn.
        let sink = TraceSink::new(&TraceConfig::enabled().with_capacity(1024), 4);
        std::thread::scope(|s| {
            for r in 0..4usize {
                let sink = &sink;
                s.spawn(move || {
                    for t in 0..100u64 {
                        sink.emit(r, t, || TraceEvent::QueueDepth {
                            local: r as u32,
                            shared: t as u32,
                        });
                        sink.hist(r, "h", t);
                        sink.gauge(r, "g", t);
                    }
                });
            }
        });
        let t = sink.finish().unwrap();
        for r in 0..4 {
            assert_eq!(t.events[r].len(), 100);
            assert!(t.events[r].windows(2).all(|w| w[0].t_ns < w[1].t_ns));
            assert!(t.events[r]
                .iter()
                .all(|e| matches!(e.event, TraceEvent::QueueDepth { local, .. } if local == r as u32)));
            assert_eq!(t.hists[r]["h"].count(), 100);
            assert_eq!(t.gauges[r]["g"].samples, 100);
        }
        assert_eq!(t.dropped, vec![0; 4]);
    }

    #[test]
    fn quantile_edge_cases_are_defined() {
        let empty = VtHistogram::default();
        for q in [f64::NAN, -1.0, 0.0, 0.5, 1.0, 2.0] {
            assert_eq!(empty.quantile_upper_bound(q), 0);
        }
        let mut h = VtHistogram::default();
        h.record(10); // bucket [8,15]
        h.record(100); // bucket [64,127]
        h.record(1000); // bucket [512,1023]
        // q=0 lands in the minimum's bucket; q=1 is the exact max.
        assert_eq!(h.quantile_upper_bound(0.0), 15);
        assert_eq!(h.quantile_upper_bound(1.0), 1000);
        // Out-of-range and NaN clamp instead of panicking or overflowing.
        assert_eq!(h.quantile_upper_bound(-0.5), 15);
        assert_eq!(h.quantile_upper_bound(7.0), 1000);
        assert_eq!(h.quantile_upper_bound(f64::NAN), 15);
        assert_eq!(h.quantile_upper_bound(0.5), 127);
        // Single-sample histogram: every q maps to that sample's bucket.
        let mut one = VtHistogram::default();
        one.record(0);
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(one.quantile_upper_bound(q), 0);
        }
    }

    #[test]
    fn summary_names_metrics_and_kinds() {
        let s = synthetic_trace().summary();
        assert!(s.contains("trace summary: 2 ranks"));
        assert!(s.contains("StealAttempt"));
        assert!(s.contains("task_exec_ns"));
        assert!(s.contains("queue_local"));
    }

    #[test]
    fn validator_accepts_and_rejects() {
        for ok in [
            "{}",
            "[]",
            "null",
            "-1.5e-3",
            "\"a\\u00ff\\n\"",
            "{\"a\":[1,2,{\"b\":true}],\"c\":null}",
            " [ 1 , 2 ] ",
        ] {
            validate_json(ok).unwrap_or_else(|e| panic!("{ok:?} should parse: {e}"));
        }
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{a:1}",
            "01",
            "1.",
            "\"\\x\"",
            "\"unterminated",
            "tru",
            "[] []",
            "{\"a\":1,}",
        ] {
            assert!(validate_json(bad).is_err(), "{bad:?} should be rejected");
        }
    }
}
