//! `VLock` — a mutex whose hold time spans *virtual* time.
//!
//! This is the primitive that makes lock contention visible in the model:
//! when a thief holds a victim's queue lock for the duration of a steal
//! (tens of microseconds of virtual time), the victim's own accesses to the
//! shared queue portion are delayed by exactly that interval — the effect
//! the Scioto paper's split queues exist to avoid (§5, Figure 7).

use std::collections::VecDeque;

use scioto_det::sync::Mutex;

use crate::ctx::Ctx;

struct LState {
    holder: Option<usize>,
    waiters: VecDeque<usize>,
    /// Virtual time of the last release (lower bound for the next acquire).
    free_at: u64,
}

/// A virtual-time-aware FIFO mutex identified by the creating collective;
/// all ranks may acquire/release it through their own [`Ctx`].
pub struct VLock {
    state: Mutex<LState>,
}

impl Default for VLock {
    fn default() -> Self {
        Self::new()
    }
}

impl VLock {
    /// Create an unlocked lock.
    pub fn new() -> Self {
        VLock {
            state: Mutex::new(LState {
                holder: None,
                waiters: VecDeque::new(),
                free_at: 0,
            }),
        }
    }

    /// Acquire the lock, charging `cost` ns (one remote RMW) on success.
    /// Blocks (in virtual time) while another rank holds the lock.
    pub fn acquire(&self, ctx: &Ctx, cost: u64) {
        ctx.yield_point();
        let rank = ctx.rank();
        let mut enqueued = false;
        loop {
            let mut st = self.state.lock();
            match st.holder {
                // Hand-off from a releaser already made us the holder.
                Some(h) if h == rank => {
                    drop(st);
                    break;
                }
                None => {
                    st.holder = Some(rank);
                    let free_at = st.free_at;
                    drop(st);
                    ctx.advance_to(free_at);
                    break;
                }
                Some(_) => {
                    if !enqueued {
                        st.waiters.push_back(rank);
                        enqueued = true;
                    }
                    drop(st);
                    ctx.block();
                }
            }
        }
        ctx.charge_net(cost);
    }

    /// Try to acquire without blocking. Charges `cost` ns whether or not
    /// the attempt succeeds (the RMW round-trip happens either way).
    pub fn try_acquire(&self, ctx: &Ctx, cost: u64) -> bool {
        ctx.yield_point();
        let rank = ctx.rank();
        let mut st = self.state.lock();
        let ok = match st.holder {
            None => {
                st.holder = Some(rank);
                true
            }
            Some(h) => h == rank,
        };
        drop(st);
        ctx.charge_net(cost);
        ok
    }

    /// Release the lock, charging `cost` ns, and hand it to the first
    /// waiter (FIFO) if any.
    ///
    /// # Panics
    /// Panics if the calling rank does not hold the lock.
    pub fn release(&self, ctx: &Ctx, cost: u64) {
        ctx.charge_net(cost);
        let rank = ctx.rank();
        let now = ctx.now();
        let mut st = self.state.lock();
        assert_eq!(
            st.holder,
            Some(rank),
            "VLock released by rank {} which does not hold it",
            rank
        );
        st.free_at = now;
        if let Some(next) = st.waiters.pop_front() {
            st.holder = Some(next);
            drop(st);
            ctx.unblock(next, now);
        } else {
            st.holder = None;
        }
    }

    /// Whether some rank currently holds the lock (racy in concurrent mode;
    /// intended for assertions and tests).
    pub fn is_held(&self) -> bool {
        self.state.lock().holder.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ExecMode, Machine, MachineConfig};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn lock_serializes_critical_sections_in_virtual_time() {
        let out = Machine::run(MachineConfig::virtual_time(4), |ctx| {
            let lock = ctx.collective(VLock::new);
            ctx.barrier_with_cost(0);
            lock.acquire(ctx, 10);
            let entry = ctx.now();
            ctx.compute(100); // critical section of 100 ns
            lock.release(ctx, 10);
            entry
        });
        let mut entries = out.results.clone();
        entries.sort_unstable();
        // Each successive entry is at least one critical section later.
        for w in entries.windows(2) {
            assert!(
                w[1] >= w[0] + 100,
                "critical sections overlapped: {entries:?}"
            );
        }
    }

    #[test]
    fn lock_mutual_exclusion_under_concurrency() {
        // Concurrent mode with a shared non-atomic counter protected by the
        // lock; mutual exclusion must make the total exact.
        let counter = Arc::new(AtomicU64::new(0));
        let c2 = counter.clone();
        let out = Machine::run(MachineConfig::concurrent(8), move |ctx| {
            let lock = ctx.collective(VLock::new);
            for _ in 0..100 {
                lock.acquire(ctx, 0);
                // Non-atomic read-modify-write would race without the lock.
                let v = c2.load(Ordering::Relaxed);
                std::hint::black_box(v);
                c2.store(v + 1, Ordering::Relaxed);
                lock.release(ctx, 0);
            }
        });
        drop(out);
        assert_eq!(counter.load(Ordering::Relaxed), 800);
    }

    #[test]
    fn try_acquire_fails_when_held() {
        let out = Machine::run(MachineConfig::virtual_time(2), |ctx| {
            let lock = ctx.collective(VLock::new);
            if ctx.rank() == 0 {
                lock.acquire(ctx, 0);
                ctx.barrier_with_cost(0); // rank 1 probes while we hold it
                ctx.barrier_with_cost(0);
                lock.release(ctx, 0);
                true
            } else {
                ctx.barrier_with_cost(0);
                let got = lock.try_acquire(ctx, 0);
                ctx.barrier_with_cost(0);
                got
            }
        });
        assert_eq!(out.results, vec![true, false]);
    }

    #[test]
    fn release_hands_off_fifo() {
        let out = Machine::run(MachineConfig::virtual_time(3), |ctx| {
            let lock = ctx.collective(VLock::new);
            // Stagger arrival: rank r arrives at r*10 ns.
            ctx.compute(ctx.rank() as u64 * 10);
            lock.acquire(ctx, 0);
            let t = ctx.now();
            ctx.compute(100);
            lock.release(ctx, 0);
            t
        });
        // Rank 0 enters at 0, rank 1 at 100, rank 2 at 200 (FIFO by arrival).
        assert_eq!(out.results, vec![0, 100, 200]);
    }

    #[test]
    #[should_panic(expected = "does not hold it")]
    fn release_without_hold_panics() {
        Machine::run(
            MachineConfig {
                mode: ExecMode::VirtualTime,
                ..MachineConfig::virtual_time(1)
            },
            |ctx| {
                let lock = ctx.collective(VLock::new);
                lock.release(ctx, 0);
            },
        );
    }
}
