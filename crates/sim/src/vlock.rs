//! `VLock` — a mutex whose hold time spans *virtual* time.
//!
//! This is the primitive that makes lock contention visible in the model:
//! when a thief holds a victim's queue lock for the duration of a steal
//! (tens of microseconds of virtual time), the victim's own accesses to the
//! shared queue portion are delayed by exactly that interval — the effect
//! the Scioto paper's split queues exist to avoid (§5, Figure 7).

use std::collections::VecDeque;

use scioto_det::sync::Mutex;

use crate::ctx::Ctx;

struct LState {
    holder: Option<usize>,
    /// True between a releaser handing the lock to a waiter and that
    /// waiter waking to claim it — distinguishes the hand-off path from a
    /// re-entrant acquire by the current holder (which is an error).
    handed: bool,
    /// Ownership generation of the current/most recent holder. The n-th
    /// successful acquire of this lock observes `gen == n` (1-based), so
    /// acquire `n` is ordered after release `n - 1` in a trace.
    gen: u64,
    waiters: VecDeque<usize>,
    /// Virtual time of the last release (lower bound for the next acquire).
    free_at: u64,
}

/// A virtual-time-aware FIFO mutex identified by the creating collective;
/// all ranks may acquire/release it through their own [`Ctx`].
pub struct VLock {
    state: Mutex<LState>,
}

impl Default for VLock {
    fn default() -> Self {
        Self::new()
    }
}

impl VLock {
    /// Create an unlocked lock.
    pub fn new() -> Self {
        VLock {
            state: Mutex::new(LState {
                holder: None,
                handed: false,
                gen: 0,
                waiters: VecDeque::new(),
                free_at: 0,
            }),
        }
    }

    /// Acquire the lock, charging `cost` ns (one remote RMW) on success.
    /// Blocks (in virtual time) while another rank holds the lock.
    /// Returns the ownership generation (1-based): acquire `n` is ordered
    /// after release `n - 1` of the same lock.
    ///
    /// # Panics
    /// Panics if the calling rank already holds the lock (`VLock` is not
    /// re-entrant; a real ARMCI mutex would deadlock here).
    pub fn acquire(&self, ctx: &Ctx, cost: u64) -> u64 {
        ctx.yield_point();
        let rank = ctx.rank();
        let mut enqueued = false;
        let seq = loop {
            let mut st = self.state.lock();
            match st.holder {
                Some(h) if h == rank => {
                    assert!(
                        st.handed,
                        "VLock acquired re-entrantly by rank {rank} which already holds it"
                    );
                    // Hand-off from a releaser already made us the holder.
                    st.handed = false;
                    let seq = st.gen;
                    drop(st);
                    break seq;
                }
                None => {
                    st.holder = Some(rank);
                    st.gen += 1;
                    let seq = st.gen;
                    let free_at = st.free_at;
                    drop(st);
                    ctx.advance_to(free_at);
                    break seq;
                }
                Some(_) => {
                    if !enqueued {
                        st.waiters.push_back(rank);
                        enqueued = true;
                    }
                    drop(st);
                    ctx.block_at("vlock.acquire");
                }
            }
        };
        ctx.charge_net(cost);
        seq
    }

    /// Try to acquire without blocking. Charges `cost` ns whether or not
    /// the attempt succeeds (the RMW round-trip happens either way).
    /// Returns the ownership generation on success, `None` when another
    /// rank holds the lock.
    ///
    /// # Panics
    /// Panics if the calling rank already holds the lock.
    pub fn try_acquire(&self, ctx: &Ctx, cost: u64) -> Option<u64> {
        ctx.yield_point();
        let rank = ctx.rank();
        let mut st = self.state.lock();
        let got = match st.holder {
            None => {
                st.holder = Some(rank);
                st.gen += 1;
                Some(st.gen)
            }
            Some(h) => {
                assert!(
                    h != rank,
                    "VLock try-acquired re-entrantly by rank {rank} which already holds it"
                );
                None
            }
        };
        drop(st);
        ctx.charge_net(cost);
        got
    }

    /// Release the lock, charging `cost` ns, and hand it to the first
    /// waiter (FIFO) if any. Returns the ownership generation being ended
    /// (the value the matching acquire returned).
    ///
    /// # Panics
    /// Panics if the calling rank does not hold the lock.
    pub fn release(&self, ctx: &Ctx, cost: u64) -> u64 {
        ctx.charge_net(cost);
        let rank = ctx.rank();
        let now = ctx.now();
        let mut st = self.state.lock();
        assert_eq!(
            st.holder,
            Some(rank),
            "VLock released by rank {} which does not hold it",
            rank
        );
        let seq = st.gen;
        st.free_at = now;
        if let Some(next) = st.waiters.pop_front() {
            st.holder = Some(next);
            st.handed = true;
            st.gen += 1;
            drop(st);
            ctx.unblock(next, now);
        } else {
            st.holder = None;
        }
        seq
    }

    /// Whether some rank currently holds the lock (racy in concurrent mode;
    /// intended for assertions and tests).
    pub fn is_held(&self) -> bool {
        self.state.lock().holder.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ExecMode, Machine, MachineConfig};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn lock_serializes_critical_sections_in_virtual_time() {
        let out = Machine::run(MachineConfig::virtual_time(4), |ctx| {
            let lock = ctx.collective(VLock::new);
            ctx.barrier_with_cost(0);
            lock.acquire(ctx, 10);
            let entry = ctx.now();
            ctx.compute(100); // critical section of 100 ns
            lock.release(ctx, 10);
            entry
        });
        let mut entries = out.results.clone();
        entries.sort_unstable();
        // Each successive entry is at least one critical section later.
        for w in entries.windows(2) {
            assert!(
                w[1] >= w[0] + 100,
                "critical sections overlapped: {entries:?}"
            );
        }
    }

    #[test]
    fn lock_mutual_exclusion_under_concurrency() {
        // Concurrent mode with a shared non-atomic counter protected by the
        // lock; mutual exclusion must make the total exact.
        let counter = Arc::new(AtomicU64::new(0));
        let c2 = counter.clone();
        let out = Machine::run(MachineConfig::concurrent(8), move |ctx| {
            let lock = ctx.collective(VLock::new);
            for _ in 0..100 {
                lock.acquire(ctx, 0);
                // Non-atomic read-modify-write would race without the lock.
                let v = c2.load(Ordering::Relaxed);
                std::hint::black_box(v);
                c2.store(v + 1, Ordering::Relaxed);
                lock.release(ctx, 0);
            }
        });
        drop(out);
        assert_eq!(counter.load(Ordering::Relaxed), 800);
    }

    #[test]
    fn try_acquire_fails_when_held() {
        let out = Machine::run(MachineConfig::virtual_time(2), |ctx| {
            let lock = ctx.collective(VLock::new);
            if ctx.rank() == 0 {
                lock.acquire(ctx, 0);
                ctx.barrier_with_cost(0); // rank 1 probes while we hold it
                ctx.barrier_with_cost(0);
                lock.release(ctx, 0);
                true
            } else {
                ctx.barrier_with_cost(0);
                let got = lock.try_acquire(ctx, 0).is_some();
                ctx.barrier_with_cost(0);
                got
            }
        });
        assert_eq!(out.results, vec![true, false]);
    }

    #[test]
    fn acquire_returns_monotonic_generations() {
        let out = Machine::run(MachineConfig::virtual_time(3), |ctx| {
            let lock = ctx.collective(VLock::new);
            ctx.compute(ctx.rank() as u64 * 10);
            let acq = lock.acquire(ctx, 0);
            ctx.compute(100);
            let rel = lock.release(ctx, 0);
            (acq, rel)
        });
        // The n-th ownership (FIFO by arrival = rank order here) is
        // generation n, and release reports the same generation.
        assert_eq!(out.results, vec![(1, 1), (2, 2), (3, 3)]);
    }

    #[test]
    fn try_acquire_generation_continues_the_sequence() {
        let out = Machine::run(MachineConfig::virtual_time(1), |ctx| {
            let lock = ctx.collective(VLock::new);
            let a = lock.acquire(ctx, 0);
            let ra = lock.release(ctx, 0);
            let b = lock.try_acquire(ctx, 0).expect("free lock");
            let rb = lock.release(ctx, 0);
            (a, ra, b, rb)
        });
        assert_eq!(out.results, vec![(1, 1, 2, 2)]);
    }

    #[test]
    #[should_panic(expected = "re-entrantly")]
    fn reentrant_acquire_panics() {
        Machine::run(MachineConfig::virtual_time(1), |ctx| {
            let lock = ctx.collective(VLock::new);
            lock.acquire(ctx, 0);
            lock.acquire(ctx, 0);
        });
    }

    #[test]
    #[should_panic(expected = "try-acquired re-entrantly")]
    fn reentrant_try_acquire_panics() {
        Machine::run(MachineConfig::virtual_time(1), |ctx| {
            let lock = ctx.collective(VLock::new);
            lock.acquire(ctx, 0);
            lock.try_acquire(ctx, 0);
        });
    }

    #[test]
    fn release_hands_off_fifo() {
        let out = Machine::run(MachineConfig::virtual_time(3), |ctx| {
            let lock = ctx.collective(VLock::new);
            // Stagger arrival: rank r arrives at r*10 ns.
            ctx.compute(ctx.rank() as u64 * 10);
            lock.acquire(ctx, 0);
            let t = ctx.now();
            ctx.compute(100);
            lock.release(ctx, 0);
            t
        });
        // Rank 0 enters at 0, rank 1 at 100, rank 2 at 200 (FIFO by arrival).
        assert_eq!(out.results, vec![0, 100, 200]);
    }

    #[test]
    #[should_panic(expected = "does not hold it")]
    fn release_without_hold_panics() {
        Machine::run(
            MachineConfig {
                mode: ExecMode::VirtualTime,
                ..MachineConfig::virtual_time(1)
            },
            |ctx| {
                let lock = ctx.collective(VLock::new);
                lock.release(ctx, 0);
            },
        );
    }
}
