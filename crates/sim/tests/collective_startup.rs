//! The coalesced startup-collective protocol: value agreement with the
//! historical two-barrier path, schedule-independent waiter clocks,
//! epoch commit semantics, pinned divergence diagnostics, and the
//! batched trace publication being a virtual-time no-op.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use scioto_sim::{Engine, Machine, MachineConfig, StartupMode, TraceConfig};

fn cfg(n: usize, startup: StartupMode, engine: Engine) -> MachineConfig {
    MachineConfig::virtual_time(n)
        .with_startup(startup)
        .with_engine(engine)
}

/// Every rank receives the same rank-0 object under both protocols and
/// both engines, and `make` runs exactly once per collective.
#[test]
fn coalesced_and_old_agree_on_values_across_engines() {
    for engine in [Engine::Threads, Engine::Auto] {
        for startup in [StartupMode::Coalesced, StartupMode::Old] {
            let made = Arc::new(AtomicUsize::new(0));
            let made2 = Arc::clone(&made);
            let out = Machine::run(cfg(4, startup, engine), move |ctx| {
                ctx.compute(1_000 * ctx.rank() as u64);
                let made = Arc::clone(&made2);
                let a = ctx.collective(move || {
                    made.fetch_add(1, Ordering::Relaxed);
                    vec![7u64, 8, 9]
                });
                let b = ctx.collective(|| String::from("shared"));
                (Arc::as_ptr(&a) as usize, a[ctx.rank() % 3], b.len())
            });
            let (p0, ..) = out.results[0];
            for &(p, v, l) in &out.results {
                assert_eq!(p, p0, "{startup:?}/{engine:?}: same instance everywhere");
                assert!(v >= 7 && l == 6);
            }
            assert_eq!(made.load(Ordering::Relaxed), 1, "{startup:?}/{engine:?}");
        }
    }
}

/// A waiter's post-collective clock is max(own arrival, rank 0's publish
/// stamp): early ranks park until publication, late ranks pay nothing.
#[test]
fn coalesced_waiter_clock_is_max_of_arrival_and_publish() {
    let out = Machine::run(
        cfg(3, StartupMode::Coalesced, Engine::Auto),
        |ctx| {
            let arrival = [10_000u64, 0, 25_000][ctx.rank()];
            ctx.compute(arrival);
            let _ = ctx.collective(|| 42u8);
            ctx.now()
        },
    );
    // rank 0 publishes at 10_000; rank 1 arrived at 0 and waited for it;
    // rank 2 arrived after publication and kept its own clock.
    assert_eq!(out.results, vec![10_000, 10_000, 25_000]);
}

/// Same seed, same program: the coalesced protocol is deterministic —
/// byte-identical traces run to run.
#[test]
fn coalesced_runs_are_deterministic() {
    let run = || {
        Machine::run(
            cfg(4, StartupMode::Coalesced, Engine::Auto).with_trace(TraceConfig::enabled()),
            |ctx| {
                ctx.compute(500 * (ctx.rank() as u64 + 1));
                let v = ctx.collective(|| 11u32);
                ctx.collective_epoch(|| {
                    let _ = ctx.collective(|| 0.5f64);
                });
                *v as u64 + ctx.now()
            },
        )
    };
    let (a, b) = (run(), run());
    assert_eq!(a.results, b.results);
    assert_eq!(a.report.makespan_ns, b.report.makespan_ns);
    let (ta, tb) = (a.report.trace.unwrap(), b.report.trace.unwrap());
    assert_eq!(ta.to_jsonl(), tb.to_jsonl());
}

/// Closing the outermost epoch runs exactly one commit barrier: all
/// ranks leave aligned at max(arrival) + barrier cost, and nested
/// epochs do not add further barriers.
#[test]
fn epoch_commits_once_and_aligns_ranks() {
    let out = Machine::run(cfg(2, StartupMode::Coalesced, Engine::Auto), |ctx| {
        ctx.collective_epoch(|| {
            let _ = ctx.collective(|| 1u8);
            // Nested epoch: transparent, no extra commit.
            ctx.collective_epoch(|| {
                let _ = ctx.collective(|| 2u16);
            });
            // Rank-local fill the commit barrier must cover.
            ctx.compute(if ctx.rank() == 1 { 9_000 } else { 100 });
        });
        ctx.now()
    });
    let t = out.results[0];
    assert_eq!(out.results, vec![t, t], "commit barrier aligns all ranks");
    assert!(t >= 9_000, "slowest rank's fill dominates: {t}");
    // One barrier's worth of release cost over the slowest fill, not two.
    let one_barrier = Machine::run(cfg(2, StartupMode::Coalesced, Engine::Auto), |ctx| {
        ctx.compute(if ctx.rank() == 1 { 9_000 } else { 100 });
        ctx.barrier();
        ctx.now()
    });
    assert_eq!(t, one_barrier.results[0]);
}

/// Under `StartupMode::Old`, `collective_epoch` is a transparent
/// wrapper: clocks match the bare sequence of old-protocol collectives.
#[test]
fn epoch_is_transparent_under_old_startup() {
    let wrapped = Machine::run(cfg(2, StartupMode::Old, Engine::Auto), |ctx| {
        ctx.collective_epoch(|| {
            let _ = ctx.collective(|| 3u8);
        });
        ctx.now()
    });
    let bare = Machine::run(cfg(2, StartupMode::Old, Engine::Auto), |ctx| {
        let _ = ctx.collective(|| 3u8);
        ctx.now()
    });
    assert_eq!(wrapped.results, bare.results);
}

fn panic_message(f: impl FnOnce() + std::panic::UnwindSafe) -> String {
    let payload = catch_unwind(f).expect_err("machine must panic");
    payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .expect("panic payload is a string")
}

/// Pinned diagnostic: a rank whose collective sequence diverges by type
/// is named with its rank, ordinal, and both types (coalesced path).
#[test]
fn coalesced_type_divergence_names_rank_ordinal_and_types() {
    let msg = panic_message(AssertUnwindSafe(|| {
        let _ = Machine::run(cfg(2, StartupMode::Coalesced, Engine::Auto), |ctx| {
            if ctx.rank() == 0 {
                let _ = ctx.collective(|| 1u32);
            } else {
                let _ = ctx.collective(String::new);
            }
            ctx.barrier();
        });
    }));
    assert!(
        msg.contains(
            "collective divergence: rank 1 reached collective #0 expecting a \
             alloc::string::String, but rank 0 published a u32 (ranks disagree on the \
             collective call sequence)"
        ),
        "unexpected diagnostic: {msg}"
    );
}

/// Same divergence, historical protocol: identical diagnostic shape.
#[test]
fn old_type_divergence_names_rank_ordinal_and_types() {
    let msg = panic_message(AssertUnwindSafe(|| {
        let _ = Machine::run(cfg(2, StartupMode::Old, Engine::Auto), |ctx| {
            if ctx.rank() == 0 {
                let _ = ctx.collective(|| 1u32);
            } else {
                let _ = ctx.collective(String::new);
            }
            ctx.barrier();
        });
    }));
    assert!(
        msg.contains(
            "collective divergence: rank 1 reached collective #0 expecting a \
             alloc::string::String, but rank 0 published a u32"
        ),
        "unexpected diagnostic: {msg}"
    );
}

/// Old protocol, rank 0 never publishes (it ran a bare barrier instead):
/// the waiting rank reports the empty slot, not a downcast failure.
#[test]
fn old_missing_publication_is_diagnosed() {
    let msg = panic_message(AssertUnwindSafe(|| {
        let _ = Machine::run(cfg(2, StartupMode::Old, Engine::Auto), |ctx| {
            if ctx.rank() == 0 {
                ctx.barrier();
                ctx.barrier();
            } else {
                let _ = ctx.collective(|| 5u64);
                ctx.barrier();
            }
        });
    }));
    assert!(
        msg.contains(
            "collective divergence: rank 1 reached collective #0 expecting a u64, \
             but rank 0 published nothing (ranks disagree on the collective call \
             sequence)"
        ),
        "unexpected diagnostic: {msg}"
    );
}

/// Batched trace publication is a virtual-time no-op: same seed, same
/// program, batch 1 (historical publish-every-event) vs. the default
/// batch produce byte-identical JSONL exports.
#[test]
fn trace_batching_is_a_vt_noop() {
    let run = |batch: usize| {
        Machine::run(
            cfg(4, StartupMode::Coalesced, Engine::Auto)
                .with_trace(TraceConfig::enabled().with_batch(batch)),
            |ctx| {
                ctx.compute(300 * (ctx.rank() as u64 + 1));
                let _ = ctx.collective(|| 9u8);
                ctx.barrier();
                ctx.compute(50);
            },
        )
        .report
        .trace
        .unwrap()
        .to_jsonl()
    };
    let historical = run(1);
    let batched = run(scioto_sim::DEFAULT_TRACE_BATCH);
    assert_eq!(historical, batched);
}
