//! Guard: the trace hot path copies `StampedEvent` twice per event
//! (stage, then ring); keep the payload compact so the concurrent
//! tracing overhead budget holds.

#[test]
fn stamped_event_stays_compact() {
    let sz = std::mem::size_of::<scioto_sim::StampedEvent>();
    assert!(sz <= 64, "StampedEvent grew to {sz} bytes; events are copied twice per emission on the traced hot path");
}
