//! Property tests of the virtual-time machine's synchronization
//! primitives: barrier timing, lock exclusion, mailbox ordering.

use proptest::prelude::*;

use scioto_sim::{Machine, MachineConfig, MailboxRouter, MsgFilter, VLock};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A barrier releases every rank at exactly max(arrival) + cost.
    #[test]
    fn barrier_release_is_max_arrival_plus_cost(
        work in proptest::collection::vec(0u64..50_000, 1..6),
        cost in 0u64..10_000,
    ) {
        let n = work.len();
        let work2 = work.clone();
        let out = Machine::run(MachineConfig::virtual_time(n), move |ctx| {
            ctx.compute(work2[ctx.rank()]);
            ctx.barrier_with_cost(cost);
            ctx.now()
        });
        let expect = work.iter().max().unwrap() + cost;
        for t in out.results {
            prop_assert_eq!(t, expect);
        }
    }

    /// Critical sections guarded by a VLock never overlap in virtual time,
    /// whatever the arrival pattern.
    #[test]
    fn vlock_sections_never_overlap(
        offsets in proptest::collection::vec(0u64..5_000, 2..6),
        section in 1u64..20_000,
    ) {
        let n = offsets.len();
        let offs = offsets.clone();
        let out = Machine::run(MachineConfig::virtual_time(n), move |ctx| {
            let lock = ctx.collective(VLock::new);
            ctx.compute(offs[ctx.rank()]);
            lock.acquire(ctx, 0);
            let start = ctx.now();
            ctx.compute(section);
            let end = ctx.now();
            lock.release(ctx, 0);
            (start, end)
        });
        let mut intervals = out.results;
        intervals.sort_unstable();
        for w in intervals.windows(2) {
            prop_assert!(
                w[1].0 >= w[0].1,
                "overlapping critical sections: {:?}",
                w
            );
        }
    }

    /// Messages from one sender to one receiver arrive in send order.
    #[test]
    fn mailbox_fifo_per_sender(count in 1usize..40, gap in 0u64..2_000) {
        let out = Machine::run(MachineConfig::virtual_time(2), move |ctx| {
            let router = ctx.collective(|| MailboxRouter::new(2));
            if ctx.rank() == 0 {
                for i in 0..count as u64 {
                    router.send(ctx, 1, 0, i.to_le_bytes().to_vec(), 100, 1_000);
                    ctx.compute(gap);
                }
                Vec::new()
            } else {
                (0..count)
                    .map(|_| {
                        let m = router.recv(ctx, MsgFilter::any());
                        u64::from_le_bytes(m.data.try_into().expect("8 bytes"))
                    })
                    .collect()
            }
        });
        let expect: Vec<u64> = (0..count as u64).collect();
        prop_assert_eq!(&out.results[1], &expect);
    }

    /// Per-rank virtual clocks never exceed the reported makespan, and the
    /// makespan equals the maximum final clock.
    #[test]
    fn makespan_is_max_clock(work in proptest::collection::vec(0u64..100_000, 1..8)) {
        let w = work.clone();
        let out = Machine::run(MachineConfig::virtual_time(work.len()), move |ctx| {
            ctx.compute(w[ctx.rank()]);
        });
        let max = *out.report.rank_clock_ns.iter().max().unwrap();
        prop_assert_eq!(out.report.makespan_ns, max);
        prop_assert_eq!(&out.report.rank_clock_ns, &work);
    }
}
