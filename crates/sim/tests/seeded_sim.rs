//! Randomized tests of the virtual-time machine's synchronization
//! primitives: barrier timing, lock exclusion, mailbox ordering.
//!
//! Ported from `proptest` to seeded loops over the in-tree deterministic
//! RNG; every case is reproducible from the printed case number.

use scioto_det::Rng;
use scioto_sim::{Machine, MachineConfig, MailboxRouter, MsgFilter, VLock};

/// A barrier releases every rank at exactly max(arrival) + cost.
#[test]
fn barrier_release_is_max_arrival_plus_cost() {
    for case in 0..24u64 {
        let mut rng = Rng::stream(0x51B1_0001, case);
        let n = rng.gen_range(1..6usize);
        let work: Vec<u64> = (0..n).map(|_| rng.gen_range(0..50_000u64)).collect();
        let cost = rng.gen_range(0..10_000u64);

        let work2 = work.clone();
        let out = Machine::run(MachineConfig::virtual_time(n), move |ctx| {
            ctx.compute(work2[ctx.rank()]);
            ctx.barrier_with_cost(cost);
            ctx.now()
        });
        let expect = work.iter().max().unwrap() + cost;
        for t in out.results {
            assert_eq!(t, expect, "case {case}: work={work:?} cost={cost}");
        }
    }
}

/// Critical sections guarded by a VLock never overlap in virtual time,
/// whatever the arrival pattern.
#[test]
fn vlock_sections_never_overlap() {
    for case in 0..24u64 {
        let mut rng = Rng::stream(0x51B1_0002, case);
        let n = rng.gen_range(2..6usize);
        let offsets: Vec<u64> = (0..n).map(|_| rng.gen_range(0..5_000u64)).collect();
        let section = rng.gen_range(1..20_000u64);

        let offs = offsets.clone();
        let out = Machine::run(MachineConfig::virtual_time(n), move |ctx| {
            let lock = ctx.collective(VLock::new);
            ctx.compute(offs[ctx.rank()]);
            lock.acquire(ctx, 0);
            let start = ctx.now();
            ctx.compute(section);
            let end = ctx.now();
            lock.release(ctx, 0);
            (start, end)
        });
        let mut intervals = out.results;
        intervals.sort_unstable();
        for w in intervals.windows(2) {
            assert!(
                w[1].0 >= w[0].1,
                "case {case}: overlapping critical sections: {w:?}"
            );
        }
    }
}

/// Messages from one sender to one receiver arrive in send order.
#[test]
fn mailbox_fifo_per_sender() {
    for case in 0..24u64 {
        let mut rng = Rng::stream(0x51B1_0003, case);
        let count = rng.gen_range(1..40usize);
        let gap = rng.gen_range(0..2_000u64);

        let out = Machine::run(MachineConfig::virtual_time(2), move |ctx| {
            let router = ctx.collective(|| MailboxRouter::new(2));
            if ctx.rank() == 0 {
                for i in 0..count as u64 {
                    router.send(ctx, 1, 0, i.to_le_bytes().to_vec(), 100, 1_000);
                    ctx.compute(gap);
                }
                Vec::new()
            } else {
                (0..count)
                    .map(|_| {
                        let m = router.recv(ctx, MsgFilter::any());
                        u64::from_le_bytes(m.data.try_into().expect("8 bytes"))
                    })
                    .collect()
            }
        });
        let expect: Vec<u64> = (0..count as u64).collect();
        assert_eq!(&out.results[1], &expect, "case {case}: count={count} gap={gap}");
    }
}

/// Per-rank virtual clocks never exceed the reported makespan, and the
/// makespan equals the maximum final clock.
#[test]
fn makespan_is_max_clock() {
    for case in 0..24u64 {
        let mut rng = Rng::stream(0x51B1_0004, case);
        let n = rng.gen_range(1..8usize);
        let work: Vec<u64> = (0..n).map(|_| rng.gen_range(0..100_000u64)).collect();

        let w = work.clone();
        let out = Machine::run(MachineConfig::virtual_time(n), move |ctx| {
            ctx.compute(w[ctx.rank()]);
        });
        let max = *out.report.rank_clock_ns.iter().max().unwrap();
        assert_eq!(out.report.makespan_ns, max, "case {case}");
        assert_eq!(&out.report.rank_clock_ns, &work, "case {case}");
    }
}
