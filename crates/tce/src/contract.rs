//! Contraction drivers: sequential reference, global-counter original,
//! and Scioto task-parallel.

use std::sync::Arc;

use scioto::{Task, TaskCollection, TcConfig, AFFINITY_HIGH};
use scioto_ga::Ga;
use scioto_sim::Ctx;

use crate::tensor::{dense_matmul_acc, BlockSparse, SparsityPattern};
use crate::FLOP_COST_NS;

/// Which load-balancing scheme drives the contraction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TceLoadBalance {
    /// Replicated task list + shared `read_inc` counter (the original TCE
    /// scheme the paper compares against).
    GlobalCounter,
    /// Scioto task collection, tasks seeded at the owner of each output
    /// tile.
    Scioto,
}

/// Problem and scheme configuration.
#[derive(Debug, Clone, Copy)]
pub struct ContractionConfig {
    /// Tile rows of C (and A).
    pub nbr: usize,
    /// Inner tile dimension (columns of A, rows of B).
    pub nbk: usize,
    /// Tile columns of C (and B).
    pub nbc: usize,
    /// Tile edge length.
    pub bs: usize,
    /// Sparsity of A.
    pub pattern_a: SparsityPattern,
    /// Sparsity of B.
    pub pattern_b: SparsityPattern,
    /// Load-balancing scheme.
    pub lb: TceLoadBalance,
    /// Steal chunk size (Scioto scheme).
    pub chunk: usize,
    /// Number of times the contraction is repeated (a CC solver reruns
    /// the same contraction every residual iteration).
    pub iterations: usize,
    /// Steal victim-selection override; `None` keeps the
    /// [`TcConfig`] default.
    pub victim: Option<scioto::VictimPolicy>,
    /// Batched termination-detection override; `None` keeps the
    /// [`TcConfig`] default.
    pub td_batch: Option<bool>,
}

impl ContractionConfig {
    /// A small default problem.
    pub fn new(lb: TceLoadBalance) -> Self {
        ContractionConfig {
            nbr: 8,
            nbk: 8,
            nbc: 8,
            bs: 8,
            pattern_a: SparsityPattern::standard(11),
            pattern_b: SparsityPattern::standard(23),
            lb,
            chunk: 2,
            iterations: 1,
            victim: None,
            td_batch: None,
        }
    }
}

/// Per-rank outcome of a contraction run.
#[derive(Debug, Clone)]
pub struct ContractionReport {
    /// Output tiles this rank computed (summed over iterations).
    pub tasks_executed: u64,
    /// Tile-multiplies this rank performed (cost units).
    pub tile_multiplies: u64,
    /// Output tiles enumerated per iteration (after sparsity analysis).
    pub tasks_total: usize,
    /// Frobenius norm of the result (identical on every rank).
    pub checksum: f64,
    /// Virtual time this rank spent in the contraction phase (excludes
    /// tensor creation/fill).
    pub contract_ns: u64,
}

/// The task list: each output tile `(r, c)` with at least one contributing
/// inner index, plus its contributor list length for cost estimation.
fn enumerate_tasks(a: &BlockSparse, b: &BlockSparse) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    for r in 0..a.nbr {
        for c in 0..b.nbc {
            let any = (0..a.nbc).any(|m| a.present(r, m) && b.present(m, c));
            if any {
                out.push((r as u32, c as u32));
            }
        }
    }
    out
}

/// Compute one output tile: gather contributing A/B tiles, multiply-
/// accumulate locally, then one `ga.acc` into C.
fn run_tile_task(
    ctx: &Ctx,
    ga: &Ga,
    a: &BlockSparse,
    b: &BlockSparse,
    c: &BlockSparse,
    r: usize,
    col: usize,
) -> u64 {
    let bs = a.bs;
    let mut acc = vec![0.0f64; bs * bs];
    let mut multiplies = 0u64;
    for m in 0..a.nbc {
        if !(a.present(r, m) && b.present(m, col)) {
            continue;
        }
        let ta = a.get_tile(ctx, ga, r, m);
        let tb = b.get_tile(ctx, ga, m, col);
        dense_matmul_acc(&mut acc, &ta, &tb, bs, bs, bs);
        multiplies += 1;
        ctx.compute((2 * bs * bs * bs) as u64 * FLOP_COST_NS as u64);
    }
    ga.acc(ctx, c.handle, c.tile_patch(r, col), 1.0, &acc);
    multiplies
}

/// Run the contraction `C = A · B` (block level) under the configured
/// scheme. Collective. Returns this rank's report; the result lives in
/// the returned C tensor's GA array.
pub fn run_contraction(ctx: &Ctx, cfg: &ContractionConfig) -> (ContractionReport, f64) {
    let ga = Ga::init(ctx);
    let a = Arc::new(BlockSparse::create(
        ctx,
        &ga,
        "A",
        cfg.nbr,
        cfg.nbk,
        cfg.bs,
        &cfg.pattern_a,
    ));
    let b = Arc::new(BlockSparse::create(
        ctx,
        &ga,
        "B",
        cfg.nbk,
        cfg.nbc,
        cfg.bs,
        &cfg.pattern_b,
    ));
    let c = Arc::new(BlockSparse::create_dense_zero(
        ctx,
        &ga,
        "C",
        cfg.nbr,
        cfg.nbc,
        cfg.bs,
    ));
    ga.zero(ctx, c.handle);
    ga.sync(ctx);

    let tasks = enumerate_tasks(&a, &b);
    let mut executed = 0u64;
    let mut multiplies = 0u64;
    let iterations = cfg.iterations.max(1);
    let contract_ns;

    match cfg.lb {
        TceLoadBalance::GlobalCounter => {
            let counter = ga.create_counter(ctx, 0);
            ga.sync(ctx);
            let t0 = ctx.now();
            for _ in 0..iterations {
                ga.zero(ctx, c.handle);
                ga.reset_counter(ctx, counter);
                ga.sync(ctx);
                loop {
                    let idx = ga.read_inc(ctx, counter, 1);
                    if idx as usize >= tasks.len() {
                        break;
                    }
                    let (r, col) = tasks[idx as usize];
                    multiplies += run_tile_task(ctx, &ga, &a, &b, &c, r as usize, col as usize);
                    executed += 1;
                }
                ga.sync(ctx);
            }
            contract_ns = ctx.now() - t0;
        }
        TceLoadBalance::Scioto => {
            let armci = ga.armci().clone();
            let mut tc_cfg = TcConfig::new(8, cfg.chunk, 1 << 14);
            if let Some(v) = cfg.victim {
                tc_cfg = tc_cfg.with_victim(v);
            }
            if let Some(b) = cfg.td_batch {
                tc_cfg = tc_cfg.with_td_batch(b);
            }
            let tc = TaskCollection::create(ctx, &armci, tc_cfg);
            let (ga2, a2, b2, c2) = (ga.clone(), a.clone(), b.clone(), c.clone());
            let mult_counter = Arc::new(std::sync::atomic::AtomicU64::new(0));
            let mult_clo = tc.register_clo(ctx, mult_counter.clone());
            let h = tc.register(
                ctx,
                Arc::new(move |t| {
                    let r = u32::from_le_bytes(t.body()[0..4].try_into().expect("4")) as usize;
                    let col = u32::from_le_bytes(t.body()[4..8].try_into().expect("4")) as usize;
                    let m = run_tile_task(t.ctx, &ga2, &a2, &b2, &c2, r, col);
                    let counter: Arc<std::sync::atomic::AtomicU64> = t.tc.clo(t.ctx, mult_clo);
                    counter.fetch_add(m, std::sync::atomic::Ordering::Relaxed);
                }),
            );
            let t0 = ctx.now();
            for _ in 0..iterations {
                ga.zero(ctx, c.handle);
                ga.sync(ctx);
                let mut task = Task::with_body_size(h, 8);
                for &(r, col) in &tasks {
                    // Seed at the owner of the output tile (locality: the
                    // final acc is then a local operation).
                    let owner =
                        ga.locate(c.handle, r as usize * cfg.bs, col as usize * cfg.bs);
                    if owner == ctx.rank() {
                        task.body_mut()[0..4].copy_from_slice(&r.to_le_bytes());
                        task.body_mut()[4..8].copy_from_slice(&col.to_le_bytes());
                        tc.add(ctx, owner, AFFINITY_HIGH, &task);
                    }
                }
                let stats = tc.process(ctx);
                executed += stats.tasks_executed;
                tc.reset(ctx);
            }
            contract_ns = ctx.now() - t0;
            multiplies = mult_counter.load(std::sync::atomic::Ordering::Relaxed);
        }
    }

    // Verification value: Frobenius norm of C (every rank computes it from
    // the distributed array; identical everywhere).
    let dense_c = c.to_dense(ctx, &ga);
    let checksum = dense_c.iter().map(|v| v * v).sum::<f64>().sqrt();
    (
        ContractionReport {
            tasks_executed: executed,
            tile_multiplies: multiplies,
            tasks_total: tasks.len(),
            checksum,
            contract_ns,
        },
        checksum,
    )
}

/// Dense reference: run the same contraction without any distribution.
/// Must be called inside a machine (it builds the same GA tensors).
pub fn reference_checksum(ctx: &Ctx, cfg: &ContractionConfig) -> f64 {
    let ga = Ga::init(ctx);
    let a = BlockSparse::create(ctx, &ga, "Aref", cfg.nbr, cfg.nbk, cfg.bs, &cfg.pattern_a);
    let b = BlockSparse::create(ctx, &ga, "Bref", cfg.nbk, cfg.nbc, cfg.bs, &cfg.pattern_b);
    let da = a.to_dense(ctx, &ga);
    let db = b.to_dense(ctx, &ga);
    let (m, k, n) = (
        cfg.nbr * cfg.bs,
        cfg.nbk * cfg.bs,
        cfg.nbc * cfg.bs,
    );
    let mut dc = vec![0.0; m * n];
    dense_matmul_acc(&mut dc, &da, &db, m, k, n);
    dc.iter().map(|v| v * v).sum::<f64>().sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use scioto_sim::{LatencyModel, Machine, MachineConfig};

    #[test]
    fn both_schemes_match_the_dense_reference() {
        for lb in [TceLoadBalance::Scioto, TceLoadBalance::GlobalCounter] {
            let out = Machine::run(
                MachineConfig::virtual_time(4).with_latency(LatencyModel::cluster()),
                move |ctx| {
                    let cfg = ContractionConfig::new(lb);
                    let reference = reference_checksum(ctx, &cfg);
                    let (report, checksum) = run_contraction(ctx, &cfg);
                    (reference, checksum, report.tasks_executed)
                },
            );
            let (reference, checksum, _) = out.results[0];
            assert!(
                (reference - checksum).abs() < 1e-9 * reference.max(1.0),
                "{lb:?}: {checksum} vs reference {reference}"
            );
            assert!(reference > 0.0, "degenerate all-zero contraction");
            let total: u64 = out.results.iter().map(|r| r.2).sum();
            let expected = Machine::run(MachineConfig::virtual_time(1), move |ctx| {
                let cfg = ContractionConfig::new(lb);
                let ga = Ga::init(ctx);
                let a = BlockSparse::create(ctx, &ga, "a", cfg.nbr, cfg.nbk, cfg.bs, &cfg.pattern_a);
                let b = BlockSparse::create(ctx, &ga, "b", cfg.nbk, cfg.nbc, cfg.bs, &cfg.pattern_b);
                enumerate_tasks(&a, &b).len()
            })
            .results[0];
            assert_eq!(total as usize, expected, "{lb:?} executed wrong task count");
        }
    }

    #[test]
    fn sparsity_makes_task_costs_irregular() {
        let out = Machine::run(MachineConfig::virtual_time(1), |ctx| {
            let cfg = ContractionConfig::new(TceLoadBalance::Scioto);
            let ga = Ga::init(ctx);
            let a = BlockSparse::create(ctx, &ga, "a", cfg.nbr, cfg.nbk, cfg.bs, &cfg.pattern_a);
            let b = BlockSparse::create(ctx, &ga, "b", cfg.nbk, cfg.nbc, cfg.bs, &cfg.pattern_b);
            let mut costs = Vec::new();
            for r in 0..a.nbr {
                for c in 0..b.nbc {
                    let k = (0..a.nbc)
                        .filter(|&m| a.present(r, m) && b.present(m, c))
                        .count();
                    if k > 0 {
                        costs.push(k);
                    }
                }
            }
            costs
        });
        let costs = &out.results[0];
        let min = costs.iter().min().copied().unwrap_or(0);
        let max = costs.iter().max().copied().unwrap_or(0);
        assert!(max > min, "costs are uniform: {costs:?}");
    }

    #[test]
    fn work_spreads_under_scioto() {
        let out = Machine::run(
            MachineConfig::virtual_time(4).with_latency(LatencyModel::cluster()),
            |ctx| {
                let cfg = ContractionConfig::new(TceLoadBalance::Scioto);
                run_contraction(ctx, &cfg).0.tasks_executed
            },
        );
        let busy = out.results.iter().filter(|&&t| t > 0).count();
        assert!(busy >= 3, "{:?}", out.results);
    }
}
