//! # scioto-tce — a block-sparse tensor-contraction kernel
//!
//! Representative of the sparse tensor contractions performed by coupled-
//! cluster models in the Tensor Contraction Engine (Baumgartner et al.),
//! which the Scioto paper uses as its second application (§6.2).
//!
//! A TCE contraction such as `C[i,j,a,b] += Σ_{c,d} A[i,j,c,d]·B[c,d,a,b]`
//! lowers — after grouping `(i,j)`, `(c,d)`, `(a,b)` into composite
//! indices — to a **block-sparse matrix multiplication** over dense tiles,
//! where spin/spatial symmetry makes many tiles identically zero. This
//! crate implements exactly that lowered form:
//!
//! * [`tensor::BlockSparse`] — a tiled matrix with a block presence mask
//!   (structured symmetry pattern + seeded random sparsity), stored in a
//!   Global Arrays distributed array;
//! * [`contract`] — the contraction drivers: a dense sequential
//!   reference, the **original** scheme (replicated task list + `read_inc`
//!   global counter), and the **Scioto** scheme (task collection seeded at
//!   the owner of each output tile, with work stealing);
//! * per-task cost is proportional to the number of contributing inner
//!   tiles, which sparsity makes irregular — the load-imbalance source
//!   the paper highlights.
//!
//! All drivers must produce bit-identical results to the dense reference;
//! the test suites enforce this.

pub mod contract;
pub mod tensor;

pub use contract::{run_contraction, ContractionConfig, ContractionReport, TceLoadBalance};
pub use tensor::{BlockSparse, SparsityPattern};

/// Virtual CPU cost charged per fused multiply-add in the tile kernel
/// (ns). A bs=8 tile-multiply (1024 flops) then costs ~1 µs — the task
/// granularity regime of the paper's TCE kernel.
pub const FLOP_COST_NS: f64 = 1.0;
