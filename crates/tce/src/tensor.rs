//! Block-sparse tiled matrices over Global Arrays.

use scioto_det::Rng;

use scioto_ga::{Ga, GaHandle, Patch};
use scioto_sim::Ctx;

/// How a tensor's block mask is generated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SparsityPattern {
    /// Fraction of blocks kept by the random component.
    pub density: f64,
    /// RNG seed (the mask must be identical on every rank).
    pub seed: u64,
    /// Structured component: drop blocks with `(r + c) % symmetry == 0`
    /// (a stand-in for spin/spatial symmetry zeros). 0 disables it.
    pub symmetry: u64,
}

impl SparsityPattern {
    /// A moderately sparse pattern.
    pub fn standard(seed: u64) -> Self {
        SparsityPattern {
            density: 0.4,
            seed,
            symmetry: 3,
        }
    }
}

/// A block-sparse matrix: `nbr × nbc` tiles of size `bs × bs`, with a
/// presence mask, backed by a dense GA array (absent tiles hold zeros and
/// are never touched).
pub struct BlockSparse {
    /// Tile rows.
    pub nbr: usize,
    /// Tile columns.
    pub nbc: usize,
    /// Tile edge length.
    pub bs: usize,
    /// `mask[r * nbc + c]` — is tile `(r, c)` present?
    pub mask: Vec<bool>,
    /// Backing distributed array of shape `(nbr·bs) × (nbc·bs)`.
    pub handle: GaHandle,
}

impl BlockSparse {
    /// Deterministic mask for the given shape and pattern.
    pub fn make_mask(nbr: usize, nbc: usize, p: &SparsityPattern) -> Vec<bool> {
        let mut rng = Rng::seed_from_u64(p.seed);
        (0..nbr * nbc)
            .map(|idx| {
                let (r, c) = (idx / nbc, idx % nbc);
                let sym_ok = p.symmetry == 0 || !((r + c) as u64).is_multiple_of(p.symmetry);
                // Draw for every tile so the mask does not depend on
                // iteration order shortcuts.
                let keep = rng.gen_f64() < p.density;
                sym_ok && keep
            })
            .collect()
    }

    /// Collectively create the tensor and fill present tiles with
    /// deterministic pseudo-random values (absent tiles stay zero).
    pub fn create(
        ctx: &Ctx,
        ga: &Ga,
        name: &str,
        nbr: usize,
        nbc: usize,
        bs: usize,
        pattern: &SparsityPattern,
    ) -> BlockSparse {
        let mask = Self::make_mask(nbr, nbc, pattern);
        let handle = ga.create(ctx, name, nbr * bs, nbc * bs);
        let t = BlockSparse {
            nbr,
            nbc,
            bs,
            mask,
            handle,
        };
        // Rank 0 fills the data (bulk initialization; the interesting
        // communication is in the contraction, not the fill).
        if ctx.rank() == 0 {
            let mut rng = Rng::seed_from_u64(pattern.seed ^ 0xDA7A);
            for r in 0..nbr {
                for c in 0..nbc {
                    if !t.present(r, c) {
                        continue;
                    }
                    let tile: Vec<f64> =
                        (0..bs * bs).map(|_| rng.gen_range(-1.0..1.0)).collect();
                    ga.put(ctx, handle, t.tile_patch(r, c), &tile);
                }
            }
        }
        ga.sync(ctx);
        t
    }

    /// Collectively create an all-zero tensor with a full mask (used for
    /// contraction outputs).
    pub fn create_dense_zero(
        ctx: &Ctx,
        ga: &Ga,
        name: &str,
        nbr: usize,
        nbc: usize,
        bs: usize,
    ) -> BlockSparse {
        let handle = ga.create(ctx, name, nbr * bs, nbc * bs);
        BlockSparse {
            nbr,
            nbc,
            bs,
            mask: vec![true; nbr * nbc],
            handle,
        }
    }

    /// Is tile `(r, c)` present?
    pub fn present(&self, r: usize, c: usize) -> bool {
        self.mask[r * self.nbc + c]
    }

    /// The patch covered by tile `(r, c)`.
    pub fn tile_patch(&self, r: usize, c: usize) -> Patch {
        Patch::new(
            r * self.bs,
            (r + 1) * self.bs,
            c * self.bs,
            (c + 1) * self.bs,
        )
    }

    /// Fetch tile `(r, c)` as a dense row-major `bs × bs` buffer.
    pub fn get_tile(&self, ctx: &Ctx, ga: &Ga, r: usize, c: usize) -> Vec<f64> {
        ga.get(ctx, self.handle, self.tile_patch(r, c))
    }

    /// Fetch the whole matrix densely (tests / reference computations).
    pub fn to_dense(&self, ctx: &Ctx, ga: &Ga) -> Vec<f64> {
        ga.get(
            ctx,
            self.handle,
            Patch::new(0, self.nbr * self.bs, 0, self.nbc * self.bs),
        )
    }

    /// Number of present tiles.
    pub fn tiles_present(&self) -> usize {
        self.mask.iter().filter(|&&m| m).count()
    }
}

/// Dense row-major reference matmul: `C += A · B` with dimensions
/// `(m × k) · (k × n)`.
pub fn dense_matmul_acc(c: &mut [f64], a: &[f64], b: &[f64], m: usize, k: usize, n: usize) {
    for i in 0..m {
        for p in 0..k {
            let aip = a[i * k + p];
            if aip == 0.0 {
                continue;
            }
            for j in 0..n {
                c[i * n + j] += aip * b[p * n + j];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scioto_sim::{Machine, MachineConfig};

    #[test]
    fn mask_is_deterministic_and_respects_symmetry() {
        let p = SparsityPattern {
            density: 1.0,
            seed: 5,
            symmetry: 2,
        };
        let a = BlockSparse::make_mask(4, 4, &p);
        let b = BlockSparse::make_mask(4, 4, &p);
        assert_eq!(a, b);
        for r in 0..4 {
            for c in 0..4 {
                if (r + c) % 2 == 0 {
                    assert!(!a[r * 4 + c], "symmetry zero at ({r},{c}) kept");
                }
            }
        }
    }

    #[test]
    fn density_controls_fill() {
        let dense = BlockSparse::make_mask(
            30,
            30,
            &SparsityPattern {
                density: 0.9,
                seed: 1,
                symmetry: 0,
            },
        );
        let sparse = BlockSparse::make_mask(
            30,
            30,
            &SparsityPattern {
                density: 0.1,
                seed: 1,
                symmetry: 0,
            },
        );
        let cd = dense.iter().filter(|&&m| m).count();
        let cs = sparse.iter().filter(|&&m| m).count();
        assert!(cd > 700 && cs < 150, "dense={cd} sparse={cs}");
    }

    #[test]
    fn absent_tiles_are_zero_present_tiles_are_not() {
        let out = Machine::run(MachineConfig::virtual_time(2), |ctx| {
            let ga = Ga::init(ctx);
            let t = BlockSparse::create(
                ctx,
                &ga,
                "t",
                3,
                3,
                4,
                &SparsityPattern {
                    density: 0.6,
                    seed: 9,
                    symmetry: 3,
                },
            );
            let mut ok = true;
            for r in 0..3 {
                for c in 0..3 {
                    let tile = t.get_tile(ctx, &ga, r, c);
                    let sum: f64 = tile.iter().map(|v| v.abs()).sum();
                    if t.present(r, c) {
                        ok &= sum > 0.0;
                    } else {
                        ok &= sum == 0.0;
                    }
                }
            }
            ok
        });
        assert!(out.results.into_iter().all(|b| b));
    }

    #[test]
    fn dense_matmul_reference() {
        // 2x2: [[1,2],[3,4]] · [[5,6],[7,8]] = [[19,22],[43,50]].
        let a = vec![1.0, 2.0, 3.0, 4.0];
        let b = vec![5.0, 6.0, 7.0, 8.0];
        let mut c = vec![0.0; 4];
        dense_matmul_acc(&mut c, &a, &b, 2, 2, 2);
        assert_eq!(c, vec![19.0, 22.0, 43.0, 50.0]);
    }
}
