//! # scioto-uts — the Unbalanced Tree Search benchmark
//!
//! UTS (Olivier et al., LCPC 2006) performs an exhaustive parallel
//! traversal of a deterministic, highly unbalanced tree. Each node's
//! children are derived by applying SHA-1 to the node's 20-byte state, so
//! the tree's shape is fixed by its parameters yet statistically
//! unpredictable — the canonical stress test for dynamic load balancing
//! (§6.2 of the Scioto paper).
//!
//! This crate provides:
//!
//! * a from-scratch [`sha1`] implementation (validated against the FIPS
//!   180-1 test vectors);
//! * geometric and binomial tree generators per the UTS specification
//!   ([`TreeParams`]);
//! * a **sequential** traversal ([`sequential::count_tree`]) used as the
//!   ground truth;
//! * a **Scioto** driver ([`scioto_driver::run_scioto_uts`]) — one task per
//!   tree node, statistics gathered in common local objects;
//! * an **MPI work-stealing** driver ([`mpi_ws::run_mpi_uts`]) mirroring
//!   the paper's baseline: explicit polling for steal requests over
//!   two-sided messages and Dijkstra ring-token termination.
//!
//! The three drivers must agree on the node count for any parameters —
//! the test suites use this as a cross-validation oracle.

pub mod mpi_ws;
pub mod node;
pub mod presets;
pub mod scioto_driver;
pub mod sequential;
pub mod sha1;

pub use node::{Node, TreeKind, TreeParams, TreeStats};

/// Per-node processing cost measured by the paper on its reference CPU
/// (2.8 GHz Opteron 254): 0.3158 µs. Heterogeneity is applied on top of
/// this via the machine's `SpeedModel`.
pub const NODE_COST_NS: u64 = 316;
