//! The paper's baseline: UTS with custom work stealing over two-sided MPI
//! messages (Dinan et al., IPDPS 2007).
//!
//! The defining property of this design — and the overhead Scioto's
//! one-sided queues eliminate — is that a victim must **explicitly poll**
//! for steal requests between units of tree traversal; a thief's request
//! sits unanswered until the victim reaches its next polling point.
//!
//! Termination uses Mattern's four-counter ring algorithm (a
//! strengthening of the Dijkstra token ring that stays correct with
//! buffered asynchronous channels): a token circulates accumulating the
//! global counts of work messages sent and received; rank 0 announces
//! termination after two consecutive rounds with equal, stable counts.

use scioto_mpi::Comm;
use scioto_sim::Ctx;

use crate::node::{Node, TreeParams, TreeStats, NODE_BYTES};
use crate::NODE_COST_NS;

const TAG_REQ: u64 = 1;
const TAG_WORK: u64 = 2;
const TAG_NOWORK: u64 = 3;
const TAG_TOKEN: u64 = 4;
const TAG_DONE: u64 = 5;

/// Configuration of an MPI work-stealing UTS run.
#[derive(Debug, Clone, Copy)]
pub struct MpiUtsConfig {
    /// Tree to traverse.
    pub params: TreeParams,
    /// Virtual CPU cost per node on the reference CPU.
    pub node_cost_ns: u64,
    /// Nodes transferred per successful steal.
    pub chunk: usize,
    /// Nodes processed between polls for steal requests.
    pub poll_interval: u32,
}

impl MpiUtsConfig {
    /// Paper-flavoured defaults: chunk 10, poll every 16 nodes.
    pub fn new(params: TreeParams) -> Self {
        MpiUtsConfig {
            params,
            node_cost_ns: NODE_COST_NS,
            chunk: 10,
            poll_interval: 16,
        }
    }
}

/// Statistics of one rank's participation in an MPI-WS run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MpiWsStats {
    /// Steal requests sent.
    pub steal_requests: u64,
    /// Successful steals (WORK received).
    pub steals_received: u64,
    /// WORK messages served to thieves.
    pub works_served: u64,
    /// Token forwards.
    pub token_passes: u64,
}

struct RingState {
    have_token: bool,
    /// Rank 0 holds the token initially, before any round has completed.
    initial: bool,
    /// `(sent, received)` totals accumulated by the token so far this round.
    token_counts: (u64, u64),
    /// Previous completed round's totals at rank 0.
    prev_counts: Option<(u64, u64)>,
    my_sent: u64,
    my_recv: u64,
}

/// Run UTS under MPI-style work stealing. Collective. Returns this rank's
/// partial tree statistics and its messaging statistics.
pub fn run_mpi_uts(ctx: &Ctx, cfg: &MpiUtsConfig) -> (TreeStats, MpiWsStats) {
    let comm = Comm::world(ctx);
    let n = comm.nranks();
    let me = ctx.rank();
    let mut stats = TreeStats::default();
    let mut ws = MpiWsStats::default();
    let mut stack: Vec<Node> = Vec::new();
    if me == 0 {
        stack.push(cfg.params.root());
    }
    if n == 1 {
        while let Some(node) = stack.pop() {
            let kids = cfg.params.num_children(&node);
            stats.visit(node.depth, kids);
            ctx.compute(cfg.node_cost_ns + ctx.latency().local_get);
            for i in 0..kids {
                stack.push(node.child(i));
                ctx.compute(ctx.latency().local_insert);
            }
        }
        return (stats, ws);
    }

    let mut ring = RingState {
        have_token: me == 0,
        initial: true,
        token_counts: (0, 0),
        prev_counts: None,
        my_sent: 0,
        my_recv: 0,
    };
    let mut since_poll = 0u32;
    let mut done = false;

    while !done {
        // Busy phase: traverse, polling for steal requests periodically.
        while let Some(node) = stack.pop() {
            let kids = cfg.params.num_children(&node);
            stats.visit(node.depth, kids);
            // The UTS-MPI StealStack's local push/pop bookkeeping costs
            // about as much as Scioto's lock-free local queue operations.
            ctx.compute(cfg.node_cost_ns + ctx.latency().local_get);
            for i in 0..kids {
                stack.push(node.child(i));
                ctx.compute(ctx.latency().local_insert);
            }
            since_poll += 1;
            if since_poll >= cfg.poll_interval {
                since_poll = 0;
                service_requests(ctx, &comm, cfg, &mut stack, &mut ring, &mut ws);
            }
        }

        // Idle phase: answer requests, move the token, steal.
        loop {
            ctx.compute(100);
            service_requests(ctx, &comm, cfg, &mut stack, &mut ring, &mut ws);
            if !stack.is_empty() {
                break; // got work handed to us? (not in this protocol, but cheap)
            }
            if comm.try_recv(ctx, None, Some(TAG_DONE)).is_some() {
                done = true;
                break;
            }
            if handle_token(ctx, &comm, &mut ring, &mut ws, me, n) {
                // Rank 0 decided: announce termination.
                for r in 1..n {
                    comm.send(ctx, r, TAG_DONE, &[]);
                }
                done = true;
                break;
            }
            // Attempt a steal from a random victim.
            let victim = {
                let mut rng = ctx.rng();
                let mut v = rng.gen_range(0..n - 1);
                if v >= me {
                    v += 1;
                }
                v
            };
            ws.steal_requests += 1;
            comm.send(ctx, victim, TAG_REQ, &[]);
            // Await the response, staying responsive to requests, the
            // token, and DONE.
            'await_resp: loop {
                ctx.compute(100);
                service_requests(ctx, &comm, cfg, &mut stack, &mut ring, &mut ws);
                if let Some(m) = comm.try_recv(ctx, Some(victim), Some(TAG_WORK)) {
                    ring.my_recv += 1;
                    ws.steals_received += 1;
                    for chunk in m.data.chunks_exact(NODE_BYTES) {
                        stack.push(Node::decode(chunk));
                    }
                    break 'await_resp;
                }
                if comm.try_recv(ctx, Some(victim), Some(TAG_NOWORK)).is_some() {
                    break 'await_resp;
                }
                if comm.iprobe(ctx, None, Some(TAG_DONE)) {
                    // Leave the DONE in the mailbox; the outer loop
                    // consumes it.
                    break 'await_resp;
                }
            }
            if !stack.is_empty() {
                break;
            }
        }
    }
    (stats, ws)
}

/// Answer pending steal requests: ship up to `chunk` nodes from the bottom
/// of the stack (the shallowest nodes, most likely to root large
/// subtrees), or decline.
fn service_requests(
    ctx: &Ctx,
    comm: &Comm,
    cfg: &MpiUtsConfig,
    stack: &mut Vec<Node>,
    ring: &mut RingState,
    ws: &mut MpiWsStats,
) {
    while let Some(req) = comm.try_recv(ctx, None, Some(TAG_REQ)) {
        // Keep at least one node for ourselves.
        let surplus = stack.len().saturating_sub(1);
        let give = surplus.min(cfg.chunk);
        if give == 0 {
            comm.send(ctx, req.src, TAG_NOWORK, &[]);
            continue;
        }
        let mut payload = Vec::with_capacity(give * NODE_BYTES);
        for node in stack.drain(..give) {
            payload.extend_from_slice(&node.encode());
        }
        ring.my_sent += 1;
        ws.works_served += 1;
        comm.send(ctx, req.src, TAG_WORK, &payload);
    }
}

/// Move the termination token if we hold it (or it has arrived). Returns
/// true when rank 0 concludes global termination.
fn handle_token(
    ctx: &Ctx,
    comm: &Comm,
    ring: &mut RingState,
    ws: &mut MpiWsStats,
    me: usize,
    n: usize,
) -> bool {
    if !ring.have_token {
        if let Some(tok) = comm.try_recv(ctx, None, Some(TAG_TOKEN)) {
            ring.have_token = true;
            ring.token_counts = (
                u64::from_le_bytes(tok.data[0..8].try_into().expect("8 bytes")),
                u64::from_le_bytes(tok.data[8..16].try_into().expect("8 bytes")),
            );
        }
    }
    if !ring.have_token {
        return false;
    }
    if me == 0 {
        if !ring.initial {
            // A round just completed; `token_counts` covers every rank
            // (rank 0's counters were folded in at round start).
            let cur = ring.token_counts;
            // Mattern's four-counter criterion: two consecutive rounds
            // with identical, balanced counts.
            if cur.0 == cur.1 && ring.prev_counts == Some(cur) {
                return true;
            }
            ring.prev_counts = Some(cur);
        }
        ring.initial = false;
        // Start a new round: fold in our counters and pass on.
        send_token(ctx, comm, 1 % n, ring.my_sent, ring.my_recv);
        ring.have_token = false;
        ws.token_passes += 1;
    } else {
        let (s, r) = ring.token_counts;
        send_token(ctx, comm, (me + 1) % n, s + ring.my_sent, r + ring.my_recv);
        ring.have_token = false;
        ws.token_passes += 1;
    }
    false
}

fn send_token(ctx: &Ctx, comm: &Comm, to: usize, s: u64, r: u64) {
    let mut payload = Vec::with_capacity(16);
    payload.extend_from_slice(&s.to_le_bytes());
    payload.extend_from_slice(&r.to_le_bytes());
    comm.send(ctx, to, TAG_TOKEN, &payload);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use crate::sequential::count_tree;
    use scioto_sim::{LatencyModel, Machine, MachineConfig};

    #[test]
    fn mpi_ws_count_matches_sequential() {
        let expect = count_tree(&presets::tiny());
        for ranks in [1, 2, 4, 5] {
            let out = Machine::run(
                MachineConfig::virtual_time(ranks).with_latency(LatencyModel::cluster()),
                |ctx| run_mpi_uts(ctx, &MpiUtsConfig::new(presets::tiny())).0,
            );
            let mut total = TreeStats::default();
            for s in &out.results {
                total.merge(s);
            }
            assert_eq!(total.nodes, expect.nodes, "ranks={ranks}");
            assert_eq!(total.leaves, expect.leaves, "ranks={ranks}");
        }
    }

    #[test]
    fn steals_happen_and_are_accounted() {
        let out = Machine::run(
            MachineConfig::virtual_time(4).with_latency(LatencyModel::cluster()),
            |ctx| run_mpi_uts(ctx, &MpiUtsConfig::new(presets::small())),
        );
        let served: u64 = out.results.iter().map(|(_, w)| w.works_served).sum();
        let received: u64 = out.results.iter().map(|(_, w)| w.steals_received).sum();
        assert_eq!(served, received, "every WORK message is consumed");
        assert!(served > 0, "no steals in a 4-rank run of a 50k tree");
    }

    #[test]
    fn deterministic_in_virtual_time() {
        let run = || {
            Machine::run(
                MachineConfig::virtual_time(3).with_latency(LatencyModel::cluster()),
                |ctx| run_mpi_uts(ctx, &MpiUtsConfig::new(presets::tiny())).0,
            )
        };
        let a = run();
        let b = run();
        let na: Vec<u64> = a.results.iter().map(|s| s.nodes).collect();
        let nb: Vec<u64> = b.results.iter().map(|s| s.nodes).collect();
        assert_eq!(na, nb);
        assert_eq!(a.report.makespan_ns, b.report.makespan_ns);
    }
}
