//! UTS tree nodes and the tree-shape parameters.

use crate::sha1::{sha1, DIGEST_BYTES};

/// Tree families from the UTS specification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TreeKind {
    /// Geometric trees: each node's child count is geometrically
    /// distributed with mean `b0`; nodes at depth `gen_mx` are leaves.
    Geometric {
        /// Expected branching factor.
        b0: f64,
        /// Depth cutoff.
        gen_mx: u32,
    },
    /// Binomial trees: the root has `b0` children; every other node has
    /// `m` children with probability `q` and none otherwise. `m·q < 1`
    /// keeps the expected size finite.
    Binomial {
        /// Root branching factor.
        b0: u32,
        /// Children of a non-root interior node.
        m: u32,
        /// Probability that a non-root node is interior.
        q: f64,
    },
}

/// Full description of a UTS tree: its family plus the root seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeParams {
    /// Tree family and shape.
    pub kind: TreeKind,
    /// Root seed (`-r` in the original benchmark).
    pub seed: u32,
}

/// Safety cap on per-node fan-out (matches the spirit of UTS's
/// MAXNUMCHILDREN guard; astronomically unlikely to bind for sane `b0`).
const MAX_CHILDREN: u32 = 10_000;

impl TreeParams {
    /// The root node of this tree.
    pub fn root(&self) -> Node {
        let mut msg = Vec::with_capacity(16);
        msg.extend_from_slice(b"UTS-root");
        msg.extend_from_slice(&self.seed.to_be_bytes());
        Node {
            state: sha1(&msg),
            depth: 0,
        }
    }

    /// Number of children of `node` under these parameters.
    pub fn num_children(&self, node: &Node) -> u32 {
        match self.kind {
            TreeKind::Geometric { b0, gen_mx } => {
                if node.depth >= gen_mx {
                    return 0;
                }
                // Geometric distribution with mean b0:
                // P(m = k) = p (1-p)^k, p = 1/(b0+1).
                let u = node.uniform();
                let p = 1.0 / (b0 + 1.0);
                let m = (u.max(f64::MIN_POSITIVE).ln() / (1.0 - p).ln()).floor();
                (m as u32).min(MAX_CHILDREN)
            }
            TreeKind::Binomial { b0, m, q } => {
                if node.depth == 0 {
                    b0.min(MAX_CHILDREN)
                } else if node.uniform() < q {
                    m.min(MAX_CHILDREN)
                } else {
                    0
                }
            }
        }
    }
}

/// A tree node: 20 bytes of SHA-1 state plus its depth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Node {
    /// SHA-1 state identifying the node.
    pub state: [u8; DIGEST_BYTES],
    /// Depth below the root.
    pub depth: u32,
}

/// Serialized size of a node (state + depth).
pub const NODE_BYTES: usize = DIGEST_BYTES + 4;

impl Node {
    /// The `i`-th child: `SHA1(state ‖ i)` one level deeper.
    pub fn child(&self, i: u32) -> Node {
        let mut msg = [0u8; DIGEST_BYTES + 4];
        msg[..DIGEST_BYTES].copy_from_slice(&self.state);
        msg[DIGEST_BYTES..].copy_from_slice(&i.to_be_bytes());
        Node {
            state: sha1(&msg),
            depth: self.depth + 1,
        }
    }

    /// Uniform value in `[0, 1)` derived from the node state.
    pub fn uniform(&self) -> f64 {
        let v = u32::from_be_bytes(self.state[..4].try_into().expect("4 bytes"));
        v as f64 / (u32::MAX as f64 + 1.0)
    }

    /// Serialize into `NODE_BYTES` bytes.
    pub fn encode(&self) -> [u8; NODE_BYTES] {
        let mut out = [0u8; NODE_BYTES];
        out[..DIGEST_BYTES].copy_from_slice(&self.state);
        out[DIGEST_BYTES..].copy_from_slice(&self.depth.to_le_bytes());
        out
    }

    /// Deserialize from bytes produced by [`Node::encode`].
    pub fn decode(buf: &[u8]) -> Node {
        let mut state = [0u8; DIGEST_BYTES];
        state.copy_from_slice(&buf[..DIGEST_BYTES]);
        Node {
            state,
            depth: u32::from_le_bytes(buf[DIGEST_BYTES..NODE_BYTES].try_into().expect("4 bytes")),
        }
    }
}

/// Aggregate statistics of a (partial or full) traversal.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TreeStats {
    /// Nodes visited.
    pub nodes: u64,
    /// Leaves visited.
    pub leaves: u64,
    /// Maximum depth seen.
    pub max_depth: u64,
}

impl TreeStats {
    /// Record one visited node.
    pub fn visit(&mut self, depth: u32, n_children: u32) {
        self.nodes += 1;
        if n_children == 0 {
            self.leaves += 1;
        }
        self.max_depth = self.max_depth.max(depth as u64);
    }

    /// Merge another partial count into this one.
    pub fn merge(&mut self, other: &TreeStats) {
        self.nodes += other.nodes;
        self.leaves += other.leaves;
        self.max_depth = self.max_depth.max(other.max_depth);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geo(b0: f64, gen_mx: u32, seed: u32) -> TreeParams {
        TreeParams {
            kind: TreeKind::Geometric { b0, gen_mx },
            seed,
        }
    }

    #[test]
    fn node_encode_decode_roundtrip() {
        let p = geo(3.0, 5, 42);
        let n = p.root().child(2).child(0);
        assert_eq!(Node::decode(&n.encode()), n);
    }

    #[test]
    fn children_are_deterministic_and_distinct() {
        let p = geo(3.0, 5, 7);
        let r = p.root();
        assert_eq!(r.child(0), r.child(0));
        assert_ne!(r.child(0), r.child(1));
        assert_ne!(r.child(0).state, r.state);
        assert_eq!(r.child(0).depth, 1);
    }

    #[test]
    fn different_seeds_give_different_trees() {
        assert_ne!(geo(3.0, 5, 1).root(), geo(3.0, 5, 2).root());
    }

    #[test]
    fn geometric_depth_cutoff() {
        let p = geo(100.0, 2, 9);
        let mut n = p.root();
        n.depth = 2;
        assert_eq!(p.num_children(&n), 0);
    }

    #[test]
    fn geometric_mean_children_near_b0() {
        // Sample many nodes; the empirical mean child count must be near
        // b0 (law of large numbers; SHA-1 gives good uniformity).
        let p = geo(4.0, 1000, 11);
        let mut n = p.root();
        let mut total = 0u64;
        let samples = 20_000;
        for i in 0..samples {
            total += p.num_children(&n) as u64;
            // Rehash to a fresh state but stay at depth 0 so the cutoff
            // never fires.
            n = Node {
                state: crate::sha1::sha1(&n.child(i % 3).state),
                depth: 0,
            };
        }
        let mean = total as f64 / samples as f64;
        assert!(
            (mean - 4.0).abs() < 0.25,
            "empirical mean {mean} far from b0 = 4"
        );
    }

    #[test]
    fn binomial_root_has_b0_children() {
        let p = TreeParams {
            kind: TreeKind::Binomial {
                b0: 17,
                m: 4,
                q: 0.2,
            },
            seed: 3,
        };
        assert_eq!(p.num_children(&p.root()), 17);
    }

    #[test]
    fn binomial_interior_probability_matches_q() {
        let p = TreeParams {
            kind: TreeKind::Binomial {
                b0: 1,
                m: 8,
                q: 0.124875,
            },
            seed: 5,
        };
        let mut n = p.root().child(0);
        let mut interior = 0u64;
        let samples = 20_000;
        for i in 0..samples {
            if p.num_children(&n) > 0 {
                interior += 1;
            }
            n = Node {
                state: crate::sha1::sha1(&n.encode()),
                depth: 1,
            };
            let _ = i;
        }
        let frac = interior as f64 / samples as f64;
        assert!(
            (frac - 0.124875).abs() < 0.01,
            "interior fraction {frac} far from q"
        );
    }

    #[test]
    fn stats_visit_and_merge() {
        let mut a = TreeStats::default();
        a.visit(0, 2);
        a.visit(1, 0);
        let mut b = TreeStats::default();
        b.visit(5, 0);
        a.merge(&b);
        assert_eq!(a.nodes, 3);
        assert_eq!(a.leaves, 2);
        assert_eq!(a.max_depth, 5);
    }
}
