//! Named tree presets, scaled-down analogues of the UTS workloads the
//! paper runs (its cluster runs traverse millions of nodes; the virtual-
//! time reproduction uses 10⁴–10⁶ nodes so a full figure sweep finishes in
//! minutes — rates and scaling shapes are insensitive to tree size once
//! the tree dwarfs `P × chunk`).

use crate::node::{TreeKind, TreeParams};

/// ~4k-node geometric tree: unit-test scale.
pub fn tiny() -> TreeParams {
    TreeParams {
        kind: TreeKind::Geometric { b0: 2.0, gen_mx: 8 },
        seed: 7,
    }
}

/// ~50k-node geometric tree: integration-test scale.
pub fn small() -> TreeParams {
    TreeParams {
        kind: TreeKind::Geometric {
            b0: 3.0,
            gen_mx: 10,
        },
        seed: 1,
    }
}

/// ~0.5M-node geometric tree: figure-regeneration scale (the cluster runs
/// of Figure 7).
pub fn medium() -> TreeParams {
    TreeParams {
        kind: TreeKind::Geometric {
            b0: 4.0,
            gen_mx: 11,
        },
        seed: 9,
    }
}

/// ~1.5M-node geometric tree: the 512-rank XT4 sweeps of Figure 8 (still
/// smaller than the paper's 4.1M-node runs; rates are tree-size-stable
/// once nodes ≫ P·chunk).
pub fn large() -> TreeParams {
    TreeParams {
        kind: TreeKind::Geometric {
            b0: 4.0,
            gen_mx: 12,
        },
        seed: 9,
    }
}

/// Binomial tree with heavy imbalance (UTS's hardest family): expected
/// ~40k nodes but with high variance along branches.
pub fn binomial_small() -> TreeParams {
    TreeParams {
        kind: TreeKind::Binomial {
            b0: 500,
            m: 8,
            q: 0.1243,
        },
        seed: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequential::count_tree_bounded;

    #[test]
    fn preset_sizes_are_in_expected_ranges() {
        let (t, done) = count_tree_bounded(&tiny(), 100_000);
        assert!(done);
        assert!(
            t.nodes > 300 && t.nodes < 100_000,
            "tiny = {} nodes",
            t.nodes
        );

        let (s, done) = count_tree_bounded(&small(), 2_000_000);
        assert!(done);
        assert!(
            s.nodes > 5_000 && s.nodes < 2_000_000,
            "small = {} nodes",
            s.nodes
        );
    }

    #[test]
    fn binomial_preset_is_finite() {
        let (b, done) = count_tree_bounded(&binomial_small(), 5_000_000);
        assert!(done, "binomial preset exceeded 5M nodes");
        assert!(b.nodes > 500, "binomial = {} nodes", b.nodes);
    }
}
