//! UTS over Scioto task collections: one task per tree node, statistics
//! accumulated in a common local object (exactly the structure described
//! in §6.2 of the paper).

use std::sync::Arc;

use scioto_det::sync::Mutex;

use scioto::{Task, TaskCollection, TcConfig, AFFINITY_HIGH};
use scioto_armci::Armci;
use scioto_sim::Ctx;

use crate::node::{Node, TreeParams, TreeStats, NODE_BYTES};
use crate::NODE_COST_NS;

/// Configuration of a Scioto UTS run.
#[derive(Debug, Clone, Copy)]
pub struct SciotoUtsConfig {
    /// Tree to traverse.
    pub params: TreeParams,
    /// Virtual CPU cost per node on the reference CPU.
    pub node_cost_ns: u64,
    /// Steal chunk size.
    pub chunk: usize,
    /// Per-rank queue capacity.
    pub max_tasks: usize,
    /// Queue implementation (split vs. the locked "No Split" ablation).
    pub queue: scioto::QueueKind,
    /// Split release threshold (shared-portion low-water mark), or `None`
    /// for the collection default.
    pub release_threshold: Option<usize>,
    /// Split release fraction, or `None` for the collection default.
    pub release_fraction: Option<f64>,
    /// Steal victim-selection policy, or `None` for the collection default.
    pub victim: Option<scioto::VictimPolicy>,
    /// Locality-bias continuation probability, or `None` for the default.
    pub victim_cont: Option<f64>,
    /// Locality-bias uniform-escape probability, or `None` for the default.
    pub victim_escape: Option<f64>,
    /// Batched termination detection, or `None` for the collection default.
    pub td_batch: Option<bool>,
}

impl SciotoUtsConfig {
    /// Paper-flavoured defaults: chunk 10, split queues.
    pub fn new(params: TreeParams) -> Self {
        SciotoUtsConfig {
            params,
            node_cost_ns: NODE_COST_NS,
            chunk: 10,
            max_tasks: 1 << 17,
            queue: scioto::QueueKind::Split,
            release_threshold: None,
            release_fraction: None,
            victim: None,
            victim_cont: None,
            victim_escape: None,
            td_batch: None,
        }
    }
}

/// Run UTS on an already-running machine. Collective. Returns this rank's
/// partial tree statistics and its task-collection statistics.
pub fn run_scioto_uts(ctx: &Ctx, cfg: &SciotoUtsConfig) -> (TreeStats, scioto::ProcessStats) {
    let armci = Armci::init(ctx);
    let mut tc_cfg = TcConfig::new(NODE_BYTES, cfg.chunk, cfg.max_tasks).with_queue(cfg.queue);
    if let Some(t) = cfg.release_threshold {
        tc_cfg.release_threshold = t;
    }
    if let Some(f) = cfg.release_fraction {
        tc_cfg.release_fraction = f;
    }
    if let Some(v) = cfg.victim {
        tc_cfg = tc_cfg.with_victim(v);
    }
    if let Some(c) = cfg.victim_cont {
        tc_cfg.victim_cont = c;
    }
    if let Some(e) = cfg.victim_escape {
        tc_cfg.victim_escape = e;
    }
    if let Some(b) = cfg.td_batch {
        tc_cfg = tc_cfg.with_td_batch(b);
    }
    let tc = TaskCollection::create(ctx, &armci, tc_cfg);

    // Common local object: this rank's partial statistics (§2.3 — "common
    // local objects are used to accumulate the tree statistics").
    let stats = Arc::new(Mutex::new(TreeStats::default()));
    let stats_clo = tc.register_clo(ctx, stats.clone());

    // The callback spawns children through its own handle.
    let self_handle = Arc::new(std::sync::OnceLock::new());
    let handle_ref = self_handle.clone();
    let params = cfg.params;
    let node_cost = cfg.node_cost_ns;
    let h = tc.register(
        ctx,
        Arc::new(move |t| {
            let node = Node::decode(t.body());
            let kids = params.num_children(&node);
            let stats: Arc<Mutex<TreeStats>> = t.tc.clo(t.ctx, stats_clo);
            stats.lock().visit(node.depth, kids);
            t.ctx.compute(node_cost);
            if kids > 0 {
                let h = *handle_ref.get().expect("handle registered before use");
                let me = t.ctx.rank();
                let mut task = Task::with_body_size(h, NODE_BYTES);
                for i in 0..kids {
                    task.body_mut().copy_from_slice(&node.child(i).encode());
                    t.tc.add(t.ctx, me, AFFINITY_HIGH, &task);
                }
            }
        }),
    );
    self_handle.set(h).expect("handle set once");

    if ctx.rank() == 0 {
        let root = cfg.params.root();
        tc.add(ctx, 0, AFFINITY_HIGH, &Task::new(h, root.encode().to_vec()));
    }
    let pstats = tc.process(ctx);
    let local = *stats.lock();
    (local, pstats)
}

/// Configuration of the chunked-task UTS driver.
#[derive(Debug, Clone, Copy)]
pub struct ChunkedUtsConfig {
    /// Base driver configuration.
    pub base: SciotoUtsConfig,
    /// Maximum tree nodes carried per task.
    pub nodes_per_task: usize,
    /// Nodes a task may process before flushing its frontier as new tasks.
    pub budget: usize,
}

impl ChunkedUtsConfig {
    /// Defaults: up to 16 nodes per task, 64-node processing budget.
    pub fn new(params: TreeParams) -> Self {
        ChunkedUtsConfig {
            base: SciotoUtsConfig::new(params),
            nodes_per_task: 16,
            budget: 64,
        }
    }
}

/// A coarser-grained UTS driver: each task carries up to `nodes_per_task`
/// tree nodes, performs a bounded DFS locally, and spawns its remaining
/// frontier as new tasks. Amortizes per-task overhead over many nodes —
/// the granularity refinement later Scioto-based UTS implementations use.
pub fn run_scioto_uts_chunked(
    ctx: &Ctx,
    cfg: &ChunkedUtsConfig,
) -> (TreeStats, scioto::ProcessStats) {
    let armci = Armci::init(ctx);
    let body_cap = 4 + cfg.nodes_per_task * NODE_BYTES;
    let mut tc_cfg = TcConfig::new(body_cap, cfg.base.chunk, cfg.base.max_tasks)
        .with_queue(cfg.base.queue);
    if let Some(v) = cfg.base.victim {
        tc_cfg = tc_cfg.with_victim(v);
    }
    if let Some(b) = cfg.base.td_batch {
        tc_cfg = tc_cfg.with_td_batch(b);
    }
    let tc = TaskCollection::create(ctx, &armci, tc_cfg);

    let stats = Arc::new(Mutex::new(TreeStats::default()));
    let stats_clo = tc.register_clo(ctx, stats.clone());

    let self_handle = Arc::new(std::sync::OnceLock::new());
    let handle_ref = self_handle.clone();
    let params = cfg.base.params;
    let node_cost = cfg.base.node_cost_ns;
    let per_task = cfg.nodes_per_task;
    let budget = cfg.budget.max(1);

    let encode = move |nodes: &[Node]| -> Vec<u8> {
        let mut body = Vec::with_capacity(4 + nodes.len() * NODE_BYTES);
        body.extend_from_slice(&(nodes.len() as u32).to_le_bytes());
        for n in nodes {
            body.extend_from_slice(&n.encode());
        }
        body
    };

    let h = tc.register(
        ctx,
        Arc::new(move |t| {
            let count = u32::from_le_bytes(t.body()[0..4].try_into().expect("4")) as usize;
            let mut stack: Vec<Node> = (0..count)
                .map(|i| Node::decode(&t.body()[4 + i * NODE_BYTES..4 + (i + 1) * NODE_BYTES]))
                .collect();
            let stats: Arc<Mutex<TreeStats>> = t.tc.clo(t.ctx, stats_clo);
            let mut local = TreeStats::default();
            let mut processed = 0usize;
            while let Some(node) = stack.pop() {
                let kids = params.num_children(&node);
                local.visit(node.depth, kids);
                t.ctx.compute(node_cost);
                for i in 0..kids {
                    stack.push(node.child(i));
                }
                processed += 1;
                if processed >= budget {
                    break;
                }
            }
            stats.lock().merge(&local);
            // Flush the remaining frontier as new tasks.
            if !stack.is_empty() {
                let h = *handle_ref.get().expect("handle registered");
                let me = t.ctx.rank();
                for chunk in stack.chunks(per_task) {
                    let task = Task::new(h, encode(chunk));
                    t.tc.add(t.ctx, me, AFFINITY_HIGH, &task);
                }
            }
        }),
    );
    self_handle.set(h).expect("handle set once");

    if ctx.rank() == 0 {
        let root = cfg.base.params.root();
        let mut body = Vec::with_capacity(4 + NODE_BYTES);
        body.extend_from_slice(&1u32.to_le_bytes());
        body.extend_from_slice(&root.encode());
        tc.add(ctx, 0, AFFINITY_HIGH, &Task::new(h, body));
    }
    let pstats = tc.process(ctx);
    let local = *stats.lock();
    (local, pstats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use crate::sequential::count_tree;
    use scioto_sim::{LatencyModel, Machine, MachineConfig};

    #[test]
    fn scioto_count_matches_sequential() {
        let expect = count_tree(&presets::tiny());
        for ranks in [1, 2, 4] {
            let out = Machine::run(
                MachineConfig::virtual_time(ranks).with_latency(LatencyModel::cluster()),
                |ctx| run_scioto_uts(ctx, &SciotoUtsConfig::new(presets::tiny())).0,
            );
            let mut total = TreeStats::default();
            for s in &out.results {
                total.merge(s);
            }
            assert_eq!(total.nodes, expect.nodes, "ranks={ranks}");
            assert_eq!(total.leaves, expect.leaves, "ranks={ranks}");
            assert_eq!(total.max_depth, expect.max_depth, "ranks={ranks}");
        }
    }

    #[test]
    fn locked_queue_driver_matches_too() {
        let expect = count_tree(&presets::tiny());
        let out = Machine::run(
            MachineConfig::virtual_time(3).with_latency(LatencyModel::cluster()),
            |ctx| {
                let cfg = SciotoUtsConfig {
                    queue: scioto::QueueKind::Locked,
                    ..SciotoUtsConfig::new(presets::tiny())
                };
                run_scioto_uts(ctx, &cfg).0
            },
        );
        let mut total = TreeStats::default();
        for s in &out.results {
            total.merge(s);
        }
        assert_eq!(total.nodes, expect.nodes);
    }

    #[test]
    fn parallel_run_spreads_nodes() {
        let out = Machine::run(
            MachineConfig::virtual_time(4).with_latency(LatencyModel::cluster()),
            |ctx| run_scioto_uts(ctx, &SciotoUtsConfig::new(presets::small())).0,
        );
        let busy = out.results.iter().filter(|s| s.nodes > 0).count();
        assert!(busy >= 3, "nodes per rank: {:?}", out.results);
    }

    #[test]
    fn chunked_driver_matches_sequential() {
        let expect = count_tree(&presets::tiny());
        for ranks in [1, 3] {
            let out = Machine::run(
                MachineConfig::virtual_time(ranks).with_latency(LatencyModel::cluster()),
                |ctx| run_scioto_uts_chunked(ctx, &ChunkedUtsConfig::new(presets::tiny())).0,
            );
            let mut total = TreeStats::default();
            for s in &out.results {
                total.merge(s);
            }
            assert_eq!(total.nodes, expect.nodes, "ranks={ranks}");
            assert_eq!(total.leaves, expect.leaves, "ranks={ranks}");
            assert_eq!(total.max_depth, expect.max_depth, "ranks={ranks}");
        }
    }

    #[test]
    fn chunked_driver_is_faster_than_per_node_tasks() {
        let time_chunked = Machine::run(
            MachineConfig::virtual_time(4).with_latency(LatencyModel::cluster()),
            |ctx| run_scioto_uts_chunked(ctx, &ChunkedUtsConfig::new(presets::small())).0,
        )
        .report
        .makespan_ns;
        let time_per_node = Machine::run(
            MachineConfig::virtual_time(4).with_latency(LatencyModel::cluster()),
            |ctx| run_scioto_uts(ctx, &SciotoUtsConfig::new(presets::small())).0,
        )
        .report
        .makespan_ns;
        assert!(
            time_chunked < time_per_node,
            "chunked {time_chunked} ns should beat per-node {time_per_node} ns"
        );
    }

    #[test]
    fn more_ranks_reduce_virtual_makespan() {
        let time = |ranks| {
            Machine::run(
                MachineConfig::virtual_time(ranks).with_latency(LatencyModel::cluster()),
                |ctx| run_scioto_uts(ctx, &SciotoUtsConfig::new(presets::small())).0,
            )
            .report
            .makespan_ns
        };
        let t1 = time(1);
        let t4 = time(4);
        assert!(
            (t4 as f64) < 0.5 * t1 as f64,
            "4 ranks ({t4} ns) should be well under half of 1 rank ({t1} ns)"
        );
    }
}
