//! Sequential depth-first traversal — the ground truth for the parallel
//! drivers, and the single-processor baseline of the performance plots.

use crate::node::{Node, TreeParams, TreeStats};

/// Exhaustively traverse the tree and return its statistics.
pub fn count_tree(params: &TreeParams) -> TreeStats {
    let mut stats = TreeStats::default();
    let mut stack: Vec<Node> = vec![params.root()];
    while let Some(n) = stack.pop() {
        let kids = params.num_children(&n);
        stats.visit(n.depth, kids);
        for i in 0..kids {
            stack.push(n.child(i));
        }
    }
    stats
}

/// Traverse at most `limit` nodes (guard for property tests on unbounded
/// parameter spaces). Returns the partial stats and whether the traversal
/// completed.
pub fn count_tree_bounded(params: &TreeParams, limit: u64) -> (TreeStats, bool) {
    let mut stats = TreeStats::default();
    let mut stack: Vec<Node> = vec![params.root()];
    while let Some(n) = stack.pop() {
        if stats.nodes >= limit {
            return (stats, false);
        }
        let kids = params.num_children(&n);
        stats.visit(n.depth, kids);
        for i in 0..kids {
            stack.push(n.child(i));
        }
    }
    (stats, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::TreeKind;

    #[test]
    fn single_node_tree() {
        let p = TreeParams {
            kind: TreeKind::Geometric { b0: 3.0, gen_mx: 0 },
            seed: 1,
        };
        let s = count_tree(&p);
        assert_eq!(s.nodes, 1);
        assert_eq!(s.leaves, 1);
        assert_eq!(s.max_depth, 0);
    }

    #[test]
    fn counts_are_reproducible() {
        let p = TreeParams {
            kind: TreeKind::Geometric { b0: 3.0, gen_mx: 6 },
            seed: 42,
        };
        let a = count_tree(&p);
        let b = count_tree(&p);
        assert_eq!(a, b);
        assert!(a.nodes > 100, "tree unexpectedly small: {a:?}");
        assert!(a.max_depth <= 6);
    }

    #[test]
    fn leaves_less_than_nodes_and_consistent() {
        let p = TreeParams {
            kind: TreeKind::Binomial {
                b0: 50,
                m: 4,
                q: 0.2,
            },
            seed: 9,
        };
        let s = count_tree(&p);
        assert!(s.leaves < s.nodes);
        assert!(s.nodes >= 51); // root + b0 children at least
    }

    #[test]
    fn bounded_traversal_stops() {
        let p = TreeParams {
            kind: TreeKind::Geometric {
                b0: 4.0,
                gen_mx: 30,
            },
            seed: 3,
        };
        let (s, complete) = count_tree_bounded(&p, 1_000);
        assert!(!complete);
        assert_eq!(s.nodes, 1_000);
    }
}
