//! SHA-1 (FIPS 180-1), implemented from scratch.
//!
//! UTS uses SHA-1 purely as a high-quality splittable pseudo-random
//! function: `child_state = SHA1(parent_state ‖ child_index)`. This is not
//! a security context — SHA-1's known collision weaknesses are irrelevant
//! here; what matters is bit-exact determinism.

/// Output size in bytes.
pub const DIGEST_BYTES: usize = 20;

/// Compute the SHA-1 digest of `data`.
pub fn sha1(data: &[u8]) -> [u8; DIGEST_BYTES] {
    let mut h: [u32; 5] = [0x6745_2301, 0xEFCD_AB89, 0x98BA_DCFE, 0x1032_5476, 0xC3D2_E1F0];

    // Message padding: 0x80, zeros, 64-bit big-endian bit length.
    let bit_len = (data.len() as u64).wrapping_mul(8);
    let mut msg = data.to_vec();
    msg.push(0x80);
    while msg.len() % 64 != 56 {
        msg.push(0);
    }
    msg.extend_from_slice(&bit_len.to_be_bytes());

    let mut w = [0u32; 80];
    for block in msg.chunks_exact(64) {
        for (i, word) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(word.try_into().expect("4 bytes"));
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let (mut a, mut b, mut c, mut d, mut e) = (h[0], h[1], h[2], h[3], h[4]);
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | ((!b) & d), 0x5A82_7999u32),
                20..=39 => (b ^ c ^ d, 0x6ED9_EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1B_BCDC),
                _ => (b ^ c ^ d, 0xCA62_C1D6),
            };
            let tmp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = tmp;
        }
        h[0] = h[0].wrapping_add(a);
        h[1] = h[1].wrapping_add(b);
        h[2] = h[2].wrapping_add(c);
        h[3] = h[3].wrapping_add(d);
        h[4] = h[4].wrapping_add(e);
    }

    let mut out = [0u8; DIGEST_BYTES];
    for (i, word) in h.iter().enumerate() {
        out[i * 4..(i + 1) * 4].copy_from_slice(&word.to_be_bytes());
    }
    out
}

/// Hex-encode a digest (for tests and debugging).
pub fn to_hex(digest: &[u8; DIGEST_BYTES]) -> String {
    digest.iter().map(|b| format!("{b:02x}")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    // FIPS 180-1 / RFC 3174 test vectors.
    #[test]
    fn fips_vector_abc() {
        assert_eq!(
            to_hex(&sha1(b"abc")),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
    }

    #[test]
    fn fips_vector_two_blocks() {
        assert_eq!(
            to_hex(&sha1(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn empty_message() {
        assert_eq!(
            to_hex(&sha1(b"")),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709"
        );
    }

    #[test]
    fn million_a() {
        let msg = vec![b'a'; 1_000_000];
        assert_eq!(
            to_hex(&sha1(&msg)),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn exact_block_boundaries() {
        // 55, 56 and 64-byte messages exercise all padding paths.
        for len in [55usize, 56, 63, 64, 65, 119, 120] {
            let msg = vec![0xA5u8; len];
            let d1 = sha1(&msg);
            let d2 = sha1(&msg);
            assert_eq!(d1, d2, "len={len}");
        }
    }

    #[test]
    fn single_bit_avalanche() {
        let a = sha1(b"scioto-uts");
        let b = sha1(b"scioto-utt");
        let differing: u32 = a
            .iter()
            .zip(b.iter())
            .map(|(x, y)| (x ^ y).count_ones())
            .sum();
        assert!(differing > 40, "only {differing} differing bits");
    }
}
