//! Property tests: the three UTS drivers agree on every (bounded) random
//! tree, and node serialization is lossless.

use proptest::prelude::*;

use scioto_sim::{LatencyModel, Machine, MachineConfig};
use scioto_uts::mpi_ws::{run_mpi_uts, MpiUtsConfig};
use scioto_uts::scioto_driver::{run_scioto_uts, SciotoUtsConfig};
use scioto_uts::sequential::count_tree_bounded;
use scioto_uts::{Node, TreeKind, TreeParams, TreeStats};

fn arb_params() -> impl Strategy<Value = TreeParams> {
    prop_oneof![
        // Geometric with small branching/depth to keep trees bounded.
        (1.2f64..3.0, 3u32..7, 0u32..500).prop_map(|(b0, gen_mx, seed)| TreeParams {
            kind: TreeKind::Geometric { b0, gen_mx },
            seed,
        }),
        // Binomial subcritical.
        (2u32..40, 2u32..5, 0.05f64..0.2, 0u32..500).prop_map(|(b0, m, q, seed)| TreeParams {
            kind: TreeKind::Binomial { b0, m, q },
            seed,
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Scioto and MPI-WS traversals both match the sequential count.
    #[test]
    fn drivers_agree_on_random_trees(params in arb_params(), ranks in 2usize..5) {
        let (seq, complete) = count_tree_bounded(&params, 200_000);
        prop_assume!(complete);
        prop_assume!(seq.nodes < 60_000);

        let out = Machine::run(
            MachineConfig::virtual_time(ranks).with_latency(LatencyModel::cluster()),
            move |ctx| run_scioto_uts(ctx, &SciotoUtsConfig::new(params)).0,
        );
        let mut scioto_total = TreeStats::default();
        for s in &out.results {
            scioto_total.merge(s);
        }
        prop_assert_eq!(scioto_total.nodes, seq.nodes);
        prop_assert_eq!(scioto_total.leaves, seq.leaves);
        prop_assert_eq!(scioto_total.max_depth, seq.max_depth);

        let out = Machine::run(
            MachineConfig::virtual_time(ranks).with_latency(LatencyModel::cluster()),
            move |ctx| run_mpi_uts(ctx, &MpiUtsConfig::new(params)).0,
        );
        let mut mpi_total = TreeStats::default();
        for s in &out.results {
            mpi_total.merge(s);
        }
        prop_assert_eq!(mpi_total.nodes, seq.nodes);
        prop_assert_eq!(mpi_total.leaves, seq.leaves);
    }

    /// Node encode/decode is the identity for arbitrary states.
    #[test]
    fn node_codec_roundtrip(state in proptest::array::uniform20(0u8..), depth in 0u32..1_000_000) {
        let n = Node { state, depth };
        prop_assert_eq!(Node::decode(&n.encode()), n);
    }

    /// Child derivation is a pure function and children are pairwise
    /// distinct for distinct indices (SHA-1 collision-freeness in practice).
    #[test]
    fn children_distinct(state in proptest::array::uniform20(0u8..), i in 0u32..50, j in 0u32..50) {
        let n = Node { state, depth: 0 };
        prop_assert_eq!(n.child(i), n.child(i));
        if i != j {
            prop_assert_ne!(n.child(i), n.child(j));
        }
    }
}
