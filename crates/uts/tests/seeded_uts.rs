//! Randomized tests: the three UTS drivers agree on every (bounded)
//! random tree, and node serialization is lossless.
//!
//! Ported from `proptest` to seeded loops over the in-tree deterministic
//! RNG; every case is reproducible from the printed case number.

use scioto_det::Rng;
use scioto_sim::{LatencyModel, Machine, MachineConfig};
use scioto_uts::mpi_ws::{run_mpi_uts, MpiUtsConfig};
use scioto_uts::scioto_driver::{run_scioto_uts, SciotoUtsConfig};
use scioto_uts::sequential::count_tree_bounded;
use scioto_uts::{Node, TreeKind, TreeParams, TreeStats};

fn random_params(rng: &mut Rng) -> TreeParams {
    if rng.gen_bool(0.5) {
        // Geometric with small branching/depth to keep trees bounded.
        TreeParams {
            kind: TreeKind::Geometric {
                b0: rng.gen_range(1.2..3.0),
                gen_mx: rng.gen_range(3..7u32),
            },
            seed: rng.gen_range(0..500u32),
        }
    } else {
        // Binomial subcritical.
        TreeParams {
            kind: TreeKind::Binomial {
                b0: rng.gen_range(2..40u32),
                m: rng.gen_range(2..5u32),
                q: rng.gen_range(0.05..0.2),
            },
            seed: rng.gen_range(0..500u32),
        }
    }
}

fn random_state(rng: &mut Rng) -> [u8; 20] {
    let mut s = [0u8; 20];
    for b in &mut s {
        *b = rng.gen_range(0..=255u8);
    }
    s
}

/// Scioto and MPI-WS traversals both match the sequential count.
#[test]
fn drivers_agree_on_random_trees() {
    let mut checked = 0u32;
    let mut case = 0u64;
    // Skip trees that are unbounded or too large (the proptest port of
    // `prop_assume!`), but always validate 12 admissible ones.
    while checked < 12 {
        let mut rng = Rng::stream(0x075A_0001, case);
        case += 1;
        assert!(case < 500, "tree generation keeps producing oversized trees");
        let params = random_params(&mut rng);
        let ranks = rng.gen_range(2..5usize);

        let (seq, complete) = count_tree_bounded(&params, 200_000);
        if !complete || seq.nodes >= 60_000 {
            continue;
        }
        checked += 1;

        let out = Machine::run(
            MachineConfig::virtual_time(ranks).with_latency(LatencyModel::cluster()),
            move |ctx| run_scioto_uts(ctx, &SciotoUtsConfig::new(params)).0,
        );
        let mut scioto_total = TreeStats::default();
        for s in &out.results {
            scioto_total.merge(s);
        }
        assert_eq!(scioto_total.nodes, seq.nodes, "case {case}: {params:?}");
        assert_eq!(scioto_total.leaves, seq.leaves, "case {case}: {params:?}");
        assert_eq!(scioto_total.max_depth, seq.max_depth, "case {case}: {params:?}");

        let out = Machine::run(
            MachineConfig::virtual_time(ranks).with_latency(LatencyModel::cluster()),
            move |ctx| run_mpi_uts(ctx, &MpiUtsConfig::new(params)).0,
        );
        let mut mpi_total = TreeStats::default();
        for s in &out.results {
            mpi_total.merge(s);
        }
        assert_eq!(mpi_total.nodes, seq.nodes, "case {case}: {params:?}");
        assert_eq!(mpi_total.leaves, seq.leaves, "case {case}: {params:?}");
    }
}

/// Node encode/decode is the identity for arbitrary states.
#[test]
fn node_codec_roundtrip() {
    for case in 0..64u64 {
        let mut rng = Rng::stream(0x075A_0002, case);
        let n = Node {
            state: random_state(&mut rng),
            depth: rng.gen_range(0..1_000_000u32),
        };
        assert_eq!(Node::decode(&n.encode()), n, "case {case}");
    }
}

/// Child derivation is a pure function and children are pairwise
/// distinct for distinct indices (SHA-1 collision-freeness in practice).
#[test]
fn children_distinct() {
    for case in 0..64u64 {
        let mut rng = Rng::stream(0x075A_0003, case);
        let n = Node {
            state: random_state(&mut rng),
            depth: 0,
        };
        let i = rng.gen_range(0..50u32);
        let j = rng.gen_range(0..50u32);
        assert_eq!(n.child(i), n.child(i), "case {case}: not a pure function");
        if i != j {
            assert_ne!(n.child(i), n.child(j), "case {case}: child {i} == child {j}");
        }
    }
}
