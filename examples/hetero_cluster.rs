//! Heterogeneity absorption: the same UTS workload on a uniform machine
//! and on the paper's half-Opteron/half-Xeon cluster. Work stealing
//! automatically shifts tree nodes toward the faster CPUs — no
//! application change, no static partitioning.
//!
//! ```text
//! cargo run --release --example hetero_cluster
//! ```

use scioto_sim::{LatencyModel, Machine, MachineConfig, SpeedModel};
use scioto_uts::scioto_driver::{run_scioto_uts, SciotoUtsConfig};
use scioto_uts::{presets, TreeStats};

fn run(p: usize, speed: SpeedModel, label: &str) {
    let params = presets::small();
    let out = Machine::run(
        MachineConfig::virtual_time(p)
            .with_latency(LatencyModel::cluster())
            .with_speed(speed),
        move |ctx| run_scioto_uts(ctx, &SciotoUtsConfig::new(params)),
    );
    let mut total = TreeStats::default();
    for (t, _) in &out.results {
        total.merge(t);
    }
    let nodes: Vec<u64> = out.results.iter().map(|(t, _)| t.nodes).collect();
    println!(
        "{label}: {:.2} ms virtual, nodes per rank = {nodes:?}",
        out.report.makespan_ns as f64 / 1e6
    );
    // On the heterogeneous machine the even (fast Opteron) ranks should
    // process visibly more nodes than the odd (slow Xeon) ranks.
    let fast: u64 = nodes.iter().step_by(2).sum();
    let slow: u64 = nodes.iter().skip(1).step_by(2).sum();
    println!(
        "  fast-rank share: {:.1}% (Opteron/Xeon speed ratio is 1.505)",
        100.0 * fast as f64 / total.nodes as f64
    );
    let _ = slow;
}

fn main() {
    let p = 8;
    run(p, SpeedModel::uniform(p), "uniform machine   ");
    run(p, SpeedModel::hetero_cluster(p), "heterogeneous mix ");
    println!(
        "\nwork stealing shifts load toward the faster CPUs without any \
         application-side partitioning."
    );
}
