//! The paper's §4 example: task-parallel blocked matrix-matrix
//! multiplication over Global Arrays (Figure 3 of the paper, in Rust).
//!
//! Each process creates only the tasks for the output blocks it owns
//! (the `get_owner` idiom); each task reads blocks of A and B with
//! one-sided gets, multiplies, and accumulates into C with `ga.acc`.
//!
//! ```text
//! cargo run --release --example matmul
//! ```

use std::sync::Arc;

use scioto::{Task, TaskCollection, TcConfig, AFFINITY_HIGH};
use scioto_ga::{Ga, GaHandle, Patch};
use scioto_sim::{LatencyModel, Machine, MachineConfig};

const N: usize = 64;
const BLOCK: usize = 16;
const NB: usize = N / BLOCK;

/// The mm_task body of Figure 1: portable GA handles plus block indices.
fn encode_body(a: GaHandle, b: GaHandle, c: GaHandle, i: usize, j: usize, k: usize) -> Vec<u8> {
    let mut body = Vec::with_capacity(48);
    for v in [a.0, b.0, c.0, i as i64, j as i64, k as i64] {
        body.extend_from_slice(&v.to_le_bytes());
    }
    body
}

fn decode_body(body: &[u8]) -> (GaHandle, GaHandle, GaHandle, usize, usize, usize) {
    let v: Vec<i64> = body
        .chunks_exact(8)
        .map(|c| i64::from_le_bytes(c.try_into().expect("8 bytes")))
        .collect();
    (
        GaHandle(v[0]),
        GaHandle(v[1]),
        GaHandle(v[2]),
        v[3] as usize,
        v[4] as usize,
        v[5] as usize,
    )
}

fn block_patch(bi: usize, bj: usize) -> Patch {
    Patch::new(bi * BLOCK, (bi + 1) * BLOCK, bj * BLOCK, (bj + 1) * BLOCK)
}

fn main() {
    let out = Machine::run(
        MachineConfig::virtual_time(4).with_latency(LatencyModel::cluster()),
        |ctx| {
            let ga = Ga::init(ctx);
            let a = ga.create(ctx, "A", N, N);
            let b = ga.create(ctx, "B", N, N);
            let c = ga.create(ctx, "C", N, N);
            // A[i][j] = i, B = identity, so C should equal A.
            if ctx.rank() == 0 {
                let av: Vec<f64> = (0..N * N).map(|x| (x / N) as f64).collect();
                ga.put(ctx, a, Patch::new(0, N, 0, N), &av);
                let mut bv = vec![0.0; N * N];
                for i in 0..N {
                    bv[i * N + i] = 1.0;
                }
                ga.put(ctx, b, Patch::new(0, N, 0, N), &bv);
            }
            ga.zero(ctx, c);
            ga.sync(ctx);

            let armci = ga.armci().clone();
            let tc = TaskCollection::create(ctx, &armci, TcConfig::new(64, 2, 4096));
            let ga_cb = ga.clone();
            let hdl = tc.register(
                ctx,
                Arc::new(move |t| {
                    let (a, b, c, i, j, k) = decode_body(t.body());
                    let ablk = ga_cb.get(t.ctx, a, block_patch(i, k));
                    let bblk = ga_cb.get(t.ctx, b, block_patch(k, j));
                    let mut cblk = vec![0.0; BLOCK * BLOCK];
                    for r in 0..BLOCK {
                        for m in 0..BLOCK {
                            let arm = ablk[r * BLOCK + m];
                            for col in 0..BLOCK {
                                cblk[r * BLOCK + col] += arm * bblk[m * BLOCK + col];
                            }
                        }
                    }
                    t.ctx.compute(2 * (BLOCK * BLOCK * BLOCK) as u64);
                    ga_cb.acc(t.ctx, c, block_patch(i, j), 1.0, &cblk);
                }),
            );

            // Figure 3: each process seeds only the tasks for blocks of C
            // that are local to it.
            let me = ctx.rank();
            let mut task = Task::with_body_size(hdl, 48);
            for i in 0..NB {
                for j in 0..NB {
                    for k in 0..NB {
                        if ga.locate(c, i * BLOCK, j * BLOCK) == me {
                            *task.body_mut() = encode_body(a, b, c, i, j, k);
                            tc.add(ctx, me, AFFINITY_HIGH, &task);
                        }
                    }
                }
            }
            let stats = tc.process(ctx);

            // Verify C == A.
            let cv = ga.get(ctx, c, Patch::new(0, N, 0, N));
            let max_err = cv
                .iter()
                .enumerate()
                .map(|(x, v)| (v - (x / N) as f64).abs())
                .fold(0.0f64, f64::max);
            (stats.tasks_executed, max_err)
        },
    );

    let total: u64 = out.results.iter().map(|(t, _)| t).sum();
    let max_err = out.results.iter().map(|(_, e)| *e).fold(0.0, f64::max);
    println!("block multiply tasks executed: {total} (expected {})", NB * NB * NB);
    println!("max |C - A| = {max_err:e}");
    println!(
        "virtual makespan: {:.2} ms",
        out.report.makespan_ns as f64 / 1e6
    );
    assert!(max_err < 1e-12, "verification failed");
    println!("verification passed: C = A x I = A");
}
