//! Quickstart: create a task collection, seed it, process it.
//!
//! A 4-process virtual machine runs 100 tasks seeded on rank 0; work
//! stealing spreads them across the machine and the wave-based detector
//! ends the phase. Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use scioto::{Task, TaskCollection, TcConfig, AFFINITY_HIGH};
use scioto_armci::Armci;
use scioto_sim::{LatencyModel, Machine, MachineConfig};

fn main() {
    let cfg = MachineConfig::virtual_time(4).with_latency(LatencyModel::cluster());
    let out = Machine::run(cfg, |ctx| {
        // Initialize the one-sided communication layer and create the
        // shared collection of task objects (tc_create).
        let armci = Armci::init(ctx);
        let tc = TaskCollection::create(ctx, &armci, TcConfig::new(16, 2, 1024));

        // A common local object: each rank's private result accumulator.
        let done = Arc::new(AtomicU64::new(0));
        let done_clo = tc.register_clo(ctx, done.clone());

        // Collectively register the task callback; the returned handle is
        // a portable integer reference.
        let hello = tc.register(
            ctx,
            Arc::new(move |t| {
                let my_counter: Arc<AtomicU64> = t.tc.clo(t.ctx, done_clo);
                let payload = scioto::wire::get_u64(t.body(), 0);
                my_counter.fetch_add(payload, Ordering::Relaxed);
                t.ctx.compute(10_000); // 10 µs of "work"
            }),
        );

        // Rank 0 seeds the collection; tasks carry opaque byte bodies.
        if ctx.rank() == 0 {
            let mut task = Task::with_body_size(hello, 8);
            for i in 1..=100u64 {
                scioto::wire::set_u64(task.body_mut(), 0, i);
                tc.add(ctx, 0, AFFINITY_HIGH, &task);
            }
        }

        // Collectively process to global quiescence (tc_process).
        let stats = tc.process(ctx);
        (done.load(Ordering::Relaxed), stats.tasks_executed)
    });

    let total: u64 = out.results.iter().map(|(sum, _)| sum).sum();
    println!("sum of payloads: {total} (expected {})", (1..=100u64).sum::<u64>());
    for (rank, (_, executed)) in out.results.iter().enumerate() {
        println!("rank {rank}: executed {executed} tasks");
    }
    println!(
        "virtual makespan: {:.1} µs",
        out.report.makespan_ns as f64 / 1e3
    );
}
