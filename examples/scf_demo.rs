//! Closed-shell SCF on a hydrogen chain, sequential vs. distributed.
//!
//! Runs the reference SCF, then the Scioto-parallel version on an
//! 8-process machine, and shows that the converged energies agree and how
//! the Fock-build tasks were distributed.
//!
//! ```text
//! cargo run --release --example scf_demo
//! ```

use scioto_scf::{
    run_scf_parallel, scf_sequential, BasisSet, LoadBalance, Molecule, ParallelScfConfig,
    ScfConfig,
};
use scioto_sim::{LatencyModel, Machine, MachineConfig};

fn main() {
    let molecule = Molecule::h_chain(8);
    let basis = BasisSet::even_tempered(molecule, 2, 0.4, 3.5);
    println!(
        "H8 chain, {} s-type basis functions, {} electrons",
        basis.len(),
        basis.molecule.n_electrons()
    );

    let seq = scf_sequential(&basis, &ScfConfig::default());
    println!(
        "sequential:    E = {:+.8} hartree in {} iterations (converged: {})",
        seq.energy, seq.iterations, seq.converged
    );

    for lb in [LoadBalance::Scioto, LoadBalance::GlobalCounter] {
        let b = basis.clone();
        let out = Machine::run(
            MachineConfig::virtual_time(8).with_latency(LatencyModel::cluster()),
            move |ctx| {
                let cfg = ParallelScfConfig {
                    lb,
                    ..Default::default()
                };
                run_scf_parallel(ctx, &b, &cfg)
            },
        );
        let r = &out.results[0];
        let tasks: Vec<u64> = out.results.iter().map(|r| r.tasks_executed).collect();
        println!(
            "{lb:?} (8 ranks): E = {:+.8} hartree, {:.2} ms virtual, tasks/rank {:?}",
            r.energy,
            out.report.makespan_ns as f64 / 1e6,
            tasks
        );
        assert!(
            (r.energy - seq.energy).abs() < 1e-8,
            "energy mismatch vs sequential"
        );
    }
    println!("parallel energies match the sequential reference.");
}
