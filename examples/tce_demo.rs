//! Block-sparse tensor contraction (the TCE kernel), Scioto vs. the
//! original global-counter scheme, verified against a dense reference.
//!
//! ```text
//! cargo run --release --example tce_demo
//! ```

use scioto_sim::{LatencyModel, Machine, MachineConfig};
use scioto_tce::contract::reference_checksum;
use scioto_tce::{run_contraction, ContractionConfig, TceLoadBalance};

fn main() {
    for lb in [TceLoadBalance::Scioto, TceLoadBalance::GlobalCounter] {
        let out = Machine::run(
            MachineConfig::virtual_time(8).with_latency(LatencyModel::cluster()),
            move |ctx| {
                let mut cfg = ContractionConfig::new(lb);
                cfg.nbr = 16;
                cfg.nbk = 16;
                cfg.nbc = 16;
                let reference = reference_checksum(ctx, &cfg);
                let (report, checksum) = run_contraction(ctx, &cfg);
                (reference, checksum, report)
            },
        );
        let (reference, checksum, _) = &out.results[0];
        let tasks: Vec<u64> = out.results.iter().map(|(_, _, r)| r.tasks_executed).collect();
        let contract_ms = out
            .results
            .iter()
            .map(|(_, _, r)| r.contract_ns)
            .max()
            .unwrap() as f64
            / 1e6;
        println!(
            "{lb:?}: ||C|| = {checksum:.6} (reference {reference:.6}), \
             {contract_ms:.2} ms virtual, tasks/rank {tasks:?}"
        );
        assert!(
            (checksum - reference).abs() < 1e-9 * reference.max(1.0),
            "contraction result mismatch"
        );
    }
    println!("both schemes reproduce the dense reference.");
}
