//! UTS three ways: sequential ground truth, Scioto work stealing, and the
//! MPI work-stealing baseline — all three must count the same tree.
//!
//! ```text
//! cargo run --release --example uts_demo
//! ```

use scioto_sim::{LatencyModel, Machine, MachineConfig, SpeedModel};
use scioto_uts::mpi_ws::{run_mpi_uts, MpiUtsConfig};
use scioto_uts::scioto_driver::{run_scioto_uts, SciotoUtsConfig};
use scioto_uts::{presets, sequential, TreeStats};

fn main() {
    let params = presets::small();
    let seq = sequential::count_tree(&params);
    println!(
        "sequential: {} nodes, {} leaves, depth {}",
        seq.nodes, seq.leaves, seq.max_depth
    );

    let p = 8;
    let machine = || {
        MachineConfig::virtual_time(p)
            .with_latency(LatencyModel::cluster())
            .with_speed(SpeedModel::hetero_cluster(p))
    };

    let scioto_out = Machine::run(machine(), move |ctx| {
        run_scioto_uts(ctx, &SciotoUtsConfig::new(params))
    });
    let mut scioto_total = TreeStats::default();
    let mut steals = 0;
    for (tree, stats) in &scioto_out.results {
        scioto_total.merge(tree);
        steals += stats.steals_succeeded;
    }
    println!(
        "scioto ({p} ranks): {} nodes in {:.2} ms virtual, {} successful steals",
        scioto_total.nodes,
        scioto_out.report.makespan_ns as f64 / 1e6,
        steals
    );

    let mpi_out = Machine::run(machine(), move |ctx| {
        run_mpi_uts(ctx, &MpiUtsConfig::new(params))
    });
    let mut mpi_total = TreeStats::default();
    let mut served = 0;
    for (tree, ws) in &mpi_out.results {
        mpi_total.merge(tree);
        served += ws.works_served;
    }
    println!(
        "mpi-ws ({p} ranks): {} nodes in {:.2} ms virtual, {} WORK messages",
        mpi_total.nodes,
        mpi_out.report.makespan_ns as f64 / 1e6,
        served
    );

    assert_eq!(scioto_total.nodes, seq.nodes);
    assert_eq!(mpi_total.nodes, seq.nodes);
    assert_eq!(scioto_total.leaves, seq.leaves);
    assert_eq!(mpi_total.max_depth, seq.max_depth);
    println!("all three traversals agree.");
}
