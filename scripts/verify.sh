#!/usr/bin/env sh
# Tier-1 verification, fully offline — proves the hermetic-build claim:
# a clean checkout builds and tests with no registry access, and the
# dependency graph contains nothing but workspace crates.
set -eu

cd "$(dirname "$0")/.."

echo "== cargo tree: auditing for external dependencies =="
# Every node in the default-feature dependency graph must be a local
# workspace crate. `cargo tree` prints local path deps with a trailing
# "(/abs/path)"; anything without one came from a registry.
tree_out=$(cargo tree --workspace --edges normal,build,dev --offline)
external=$(printf '%s\n' "$tree_out" \
    | grep -Eo '[a-zA-Z0-9_-]+ v[0-9][^ ]*( \(.*\))?$' \
    | grep -v '(/' || true)
if [ -n "$external" ]; then
    echo "FAIL: non-workspace dependencies found:" >&2
    printf '%s\n' "$external" | sort -u >&2
    exit 1
fi
echo "ok: dependency graph is workspace-only"

echo "== cargo build --release --offline =="
cargo build --release --offline

echo "== cargo test -q --offline (tier-1) =="
cargo test -q --offline

echo "== trace smoke: table1 --trace-out round-trips through trace_check =="
trace_tmp=$(mktemp /tmp/scioto-trace.XXXXXX.json)
trap 'rm -f "$trace_tmp"' EXIT
cargo run --release --offline -q -p scioto-bench --bin table1 -- \
    --trace-out "$trace_tmp" > /dev/null
cargo run --release --offline -q -p scioto-bench --bin trace_check -- \
    --file "$trace_tmp" --ranks 2

echo "verify.sh: all checks passed"
