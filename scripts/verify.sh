#!/usr/bin/env sh
# Tier-1 verification, fully offline — proves the hermetic-build claim:
# a clean checkout builds and tests with no registry access, and the
# dependency graph contains nothing but workspace crates.
#
# Usage: verify.sh [--bless]
#   --bless  regenerate results/baselines/ from this tree's runs instead
#            of diffing against them (commit the refreshed files).
set -eu

cd "$(dirname "$0")/.."

BLESS=0
for arg in "$@"; do
    case "$arg" in
        --bless) BLESS=1 ;;
        *) echo "usage: verify.sh [--bless]" >&2; exit 2 ;;
    esac
done

echo "== cargo tree: auditing for external dependencies =="
# Every node in the default-feature dependency graph must be a local
# workspace crate. `cargo tree` prints local path deps with a trailing
# "(/abs/path)"; anything without one came from a registry.
tree_out=$(cargo tree --workspace --edges normal,build,dev --offline)
external=$(printf '%s\n' "$tree_out" \
    | grep -Eo '[a-zA-Z0-9_-]+ v[0-9][^ ]*( \(.*\))?$' \
    | grep -v '(/' || true)
if [ -n "$external" ]; then
    echo "FAIL: non-workspace dependencies found:" >&2
    printf '%s\n' "$external" | sort -u >&2
    exit 1
fi
echo "ok: dependency graph is workspace-only"

echo "== cargo build --release --offline =="
cargo build --release --offline

echo "== cargo test -q --offline --workspace (tier-1) =="
# The root manifest is a package AND the workspace root; without
# --workspace only the root cross-crate suite runs.
cargo test -q --offline --workspace

echo "== scioto-lint: source invariant scan (hard gate) =="
cargo run --release --offline -q -p scioto-race --bin scioto-lint

# Fresh bench results are grouped by how they are gated: every BENCH file
# in a directory is compared against its same-named committed baseline by
# ONE `bench_diff --all` invocation per directory.
#   loose/       rel-tol 0.5 — regression tripwires for the default-policy runs
#   eng_threads/ rel-tol 0   — engine-equivalence re-derivations (threads)
#   eng_events/  rel-tol 0   — engine-equivalence re-derivations (fibers)
#   exact/       rel-tol 0   — deterministic pinned points (old policy,
#                              1024/2048-rank sweeps, tuner output)
work=$(mktemp -d /tmp/scioto-verify.XXXXXX)
trap 'rm -rf "$work"' EXIT
mkdir -p "$work/loose" "$work/eng_threads" "$work/eng_events" "$work/exact"
diff_all() {
    # diff_all <dir> <rel-tol>
    cargo run --release --offline -q -p scioto-bench --bin bench_diff -- \
        --all "$1" --rel-tol "$2"
}

echo "== scioto-lint: waiver ratchet (counts may only shrink) =="
cargo run --release --offline -q -p scioto-race --bin scioto-lint -- --stats \
    > "$work/lint_waivers.txt"
if [ "$BLESS" = 1 ]; then
    cp "$work/lint_waivers.txt" results/lint_waivers.txt
    echo "blessed results/lint_waivers.txt"
else
    while read -r rule count; do
        old=$(awk -v r="$rule" '$1 == r { print $2 }' results/lint_waivers.txt)
        [ -z "$old" ] && old=0
        if [ "$count" -gt "$old" ]; then
            echo "FAIL: lint waivers for '$rule' grew $old -> $count" >&2
            echo "  (remove the new waiver, or bless with verify.sh --bless)" >&2
            exit 1
        fi
    done < "$work/lint_waivers.txt"
    if ! cmp -s "$work/lint_waivers.txt" results/lint_waivers.txt; then
        echo "note: waiver counts shrank — refresh the ratchet with verify.sh --bless"
        diff results/lint_waivers.txt "$work/lint_waivers.txt" || true
    fi
    echo "ok: waiver ratchet holds"
fi

echo "== trace smoke: table1 --trace-out round-trips through trace_check =="
cargo run --release --offline -q -p scioto-bench --bin table1 -- \
    --trace-out "$work/table1_chrome.json" > /dev/null
cargo run --release --offline -q -p scioto-bench --bin trace_check -- \
    --file "$work/table1_chrome.json" --ranks 2

echo "== analyze: traced table1 -> blame/critical-path report =="
# One traced run emits the JSONL dump, the in-memory analysis, the race
# verdict, the in-process replay self-check, and the machine-readable
# benchmark result.
cargo run --release --offline -q -p scioto-bench --bin table1 -- \
    --trace-out "$work/table1.jsonl" \
    --analysis-out "$work/table1_analysis.json" \
    --race-check --predict --deadlock --replay-check \
    --json-out "$work/loose/BENCH_table1.json" > /dev/null
# The offline analyzer re-parses the JSONL dump; its report must match
# the in-memory analysis byte for byte.
cargo run --release --offline -q -p scioto-bench --bin analyze -- \
    --file "$work/table1.jsonl" \
    --json-out "$work/table1_analysis_offline.json" > /dev/null
cmp "$work/table1_analysis.json" "$work/table1_analysis_offline.json"
echo "ok: offline analyzer matches in-memory analysis"

echo "== replay: recorded traces re-execute byte-identically (hard gate) =="
# The replay engine reconstructs the run from the trace alone — no
# workload closure — and must reproduce the live analysis (blame
# decomposition + critical path) byte for byte: table1 and fig7@8.
# --max-episodes is the barrier-episode census gate: the coalesced
# startup path brings the traced table1 run to 4 barrier episodes
# (create + process prologue + termination + teardown); budget 6 so a
# collective regressing to extra barrier rounds fails loudly while
# leaving headroom for a deliberate new collective.
cargo run --release --offline -q -p scioto-bench --bin trace_check -- \
    --file "$work/table1.jsonl" --replayable --max-episodes 6
cargo run --release --offline -q -p scioto-bench --bin replay -- \
    --file "$work/table1.jsonl" --check \
    --analysis-out "$work/table1_analysis_replay.json" > /dev/null
cmp "$work/table1_analysis.json" "$work/table1_analysis_replay.json"
echo "ok: table1 replay matches the live blame report byte-identically"

echo "== bench runs: fig7 / fig4 / ablation / fig8 (new default policy) =="
# Every bin runs with `--race-check` and `--replay-check`: the traced run
# replays through the happens-before checker AND the replay engine
# in-process, so all six bins are race- and replay-gated under the new
# default policy (locality victims + tree barrier + batched TD).
cargo run --release --offline -q -p scioto-bench --bin fig7_uts_cluster -- \
    --max-ranks 8 --tree small --trace-out "$work/fig7.jsonl" \
    --analysis-out "$work/fig7_analysis.json" \
    --race-check --predict --deadlock --replay-check \
    --json-out "$work/loose/BENCH_fig7.json" > /dev/null
cargo run --release --offline -q -p scioto-bench --bin fig4_termination -- \
    --race-check --predict --deadlock --replay-check \
    --json-out "$work/loose/BENCH_fig4.json" > /dev/null
cargo run --release --offline -q -p scioto-bench --bin ablation -- \
    --race-check --predict --deadlock --replay-check \
    --json-out "$work/loose/BENCH_ablation.json" > /dev/null
cargo run --release --offline -q -p scioto-bench --bin fig8_uts_xt4 -- \
    --max-ranks 8 --tree small --race-check --predict --deadlock --replay-check \
    --json-out "$work/loose/BENCH_fig8.json" > /dev/null
cargo run --release --offline -q -p scioto-bench --bin fig5_fig6_apps -- \
    --max-ranks 1 --race-check --predict --deadlock --replay-check > /dev/null

echo "== replay: fig7@8 recorded trace reproduces blame + critical path =="
cargo run --release --offline -q -p scioto-bench --bin trace_check -- \
    --file "$work/fig7.jsonl" --replayable
cargo run --release --offline -q -p scioto-bench --bin replay -- \
    --file "$work/fig7.jsonl" --check \
    --analysis-out "$work/fig7_analysis_replay.json" > /dev/null
cmp "$work/fig7_analysis.json" "$work/fig7_analysis_replay.json"
echo "ok: fig7@8 replay matches the live blame report byte-identically"

echo "== policy ablation: old knobs still reproduce the pinned baseline =="
# The ablation baseline (uniform victims, flat barrier, per-slot TD) must
# stay byte-identical: rel-tol 0 against its own pinned results file.
cargo run --release --offline -q -p scioto-bench --bin fig7_uts_cluster -- \
    --max-ranks 8 --tree small --old-policy \
    --json-out "$work/exact/BENCH_fig7_oldpolicy.json" > /dev/null
# New policy vs old policy on the same workload: the knobs are expected to
# move throughput (that is the point), but never catastrophically — the
# params differ by construction, so they are excluded from the gate, as
# is the startup split (the flat barrier makes the old policy's startup
# ~2x costlier; the startup ablation below gates startup on its own).
cargo run --release --offline -q -p scioto-bench --bin bench_diff -- \
    --baseline "$work/exact/BENCH_fig7_oldpolicy.json" \
    --new "$work/loose/BENCH_fig7.json" \
    --ignore-params victim,barrier,td_batch \
    --ignore-metrics 'split_startup_ns_*' --rel-tol 0.5

echo "== startup ablation: --old-startup reproduces the historical schedule =="
# Coalesced startup collectives are the default; the historical
# two-barriers-per-collective protocol stays selectable via
# --old-startup and is pinned as its own deterministic baseline at
# rel-tol 0 (the diff_all over exact/ below), so the old path can never
# silently drift. Cross-diff against the coalesced default run:
# coalescing moves startup cost, never throughput (the startup param
# and the coalesced-only startup split differ by construction).
cargo run --release --offline -q -p scioto-bench --bin fig7_uts_cluster -- \
    --max-ranks 8 --tree small --old-startup \
    --json-out "$work/exact/BENCH_fig7_oldstartup.json" > /dev/null
cargo run --release --offline -q -p scioto-bench --bin bench_diff -- \
    --baseline "$work/exact/BENCH_fig7_oldstartup.json" \
    --new "$work/loose/BENCH_fig7.json" \
    --ignore-params startup --ignore-metrics 'split_startup_ns_*' --rel-tol 0.5

echo "== engine equivalence: pinned baselines at rel-tol 0 under BOTH engines =="
# The virtual-time kernel has two execution substrates (parked threads,
# event-driven fibers) behind one scheduler; the engine must never move a
# result. Every committed baseline is re-derived under each engine
# explicitly and diffed byte-for-byte (rel-tol 0). This is the hard gate
# behind the "engines are byte-identical" claim in README/DESIGN.
for eng in threads events; do
    d="$work/eng_$eng"
    cargo run --release --offline -q -p scioto-bench --bin table1 -- \
        --engine "$eng" --json-out "$d/BENCH_table1.json" > /dev/null
    cargo run --release --offline -q -p scioto-bench --bin fig7_uts_cluster -- \
        --max-ranks 8 --tree small --engine "$eng" \
        --json-out "$d/BENCH_fig7.json" > /dev/null
    cargo run --release --offline -q -p scioto-bench --bin fig7_uts_cluster -- \
        --max-ranks 8 --tree small --old-policy --engine "$eng" \
        --json-out "$d/BENCH_fig7_oldpolicy.json" > /dev/null
    cargo run --release --offline -q -p scioto-bench --bin fig4_termination -- \
        --engine "$eng" --json-out "$d/BENCH_fig4.json" > /dev/null
    cargo run --release --offline -q -p scioto-bench --bin ablation -- \
        --engine "$eng" --json-out "$d/BENCH_ablation.json" > /dev/null
    cargo run --release --offline -q -p scioto-bench --bin fig8_uts_xt4 -- \
        --max-ranks 8 --tree small --engine "$eng" \
        --json-out "$d/BENCH_fig8.json" > /dev/null
    if [ "$BLESS" = 0 ]; then
        diff_all "$d" 0
    fi
    echo "ok: all pinned baselines reproduce at rel-tol 0 on the $eng engine"
done

echo "== large-scale: 1024/2048-rank event-engine points, near/far tiers =="
# Only the fiber engine can stand up 1024+ ranks on this host; the sweep
# points use the topology-aware near/far latency preset and are pinned as
# their own baselines (deterministic, so rel-tol 0).
cargo run --release --offline -q -p scioto-bench --bin fig4_termination -- \
    --max-ranks 1024 --only-ranks 1024 --latency nearfar --engine events \
    --json-out "$work/exact/BENCH_fig4_1024_nearfar.json" > /dev/null
cargo run --release --offline -q -p scioto-bench --bin fig7_uts_cluster -- \
    --max-ranks 1024 --only-ranks 1024 --latency nearfar --engine events \
    --tree small --json-out "$work/exact/BENCH_fig7_1024_nearfar.json" > /dev/null
cargo run --release --offline -q -p scioto-bench --bin fig8_uts_xt4 -- \
    --max-ranks 2048 --only-ranks 2048 --latency nearfar --engine events \
    --tree small --json-out "$work/exact/BENCH_fig8_2048_nearfar.json" > /dev/null
# Steal-locality pin: the fig7@1024 near/far traced run's ring-distance
# histogram, mean distance, and near-steal share from the analyzer's
# provenance pass, recorded as first-class bench metrics. `--only-ranks 0`
# skips every throughput sweep point so only the traced run executes;
# deterministic under the events engine, hence pinned at rel-tol 0.
cargo run --release --offline -q -p scioto-bench --bin fig7_uts_cluster -- \
    --max-ranks 1024 --only-ranks 0 --latency nearfar --engine events \
    --tree small --trace-ranks 1024 --trace-tree small --steal-dist \
    --json-out "$work/exact/BENCH_fig7_1024_nearfar_stealdist.json" > /dev/null
echo "ok: 1024/2048-rank event-engine sweep points + steal-distance pin ran"

echo "== autotune: 2-candidate smoke + fig7@64 closed loop (hard gate) =="
# Smoke: record -> lower -> self-check -> replay-score 2 candidates at
# 8 ranks; exercises the whole loop in well under a second.
cargo run --release --offline -q -p scioto-bench --bin tune -- \
    --ranks 8 --tree tiny --max-candidates 2 --top 1 \
    --out "$work/tune_smoke_config.json" > /dev/null
# Full loop at the acceptance point: fig7@64 under near/far tiers. The
# tuner must beat the PR-5 defaults on a fresh seeded run
# (--require-improvement exits 1 otherwise) and its BENCH output is
# pinned at rel-tol 0 like every other deterministic result.
cargo run --release --offline -q -p scioto-bench --bin tune -- \
    --ranks 64 --tree small --latency nearfar \
    --out "$work/tuned_config.json" --report "$work/tune_report.txt" \
    --json-out "$work/exact/BENCH_fig7_tuned.json" \
    --require-improvement > /dev/null
echo "ok: autotuner improved fig7@64 over the defaults"
if [ "$BLESS" = 0 ]; then
    diff_all "$work/exact" 0
fi

echo "== race check: HB + predictive + deadlock on table1 + fig7 traces (hard gate) =="
# The standalone checker re-parses the exported JSONL dumps and must come
# back clean on all three analyses; the canonical scioto-race-v1 report is
# emitted and sanity-checked. Timed: the predictive pass may add at most
# 45s on top of the old 30s HB budget.
race_t0=$(date +%s)
cargo run --release --offline -q -p scioto-race --bin race_check -- \
    --predict --deadlock --json-out "$work/race_report.jsonl" \
    "$work/table1.jsonl" "$work/fig7.jsonl"
grep -q '"schema":"scioto-race-v1"' "$work/race_report.jsonl"
if grep -q '"clean":false' "$work/race_report.jsonl"; then
    echo "FAIL: race_check JSON report flags an unclean trace" >&2
    exit 1
fi
race_t1=$(date +%s)
race_secs=$((race_t1 - race_t0))
echo "ok: race + predict + deadlock check finished in ${race_secs}s"
if [ "$race_secs" -ge 45 ]; then
    echo "FAIL: race check took ${race_secs}s (budget: <45s)" >&2
    exit 1
fi

echo "== concurrent backend: wall-clock observability lane (hard gate) =="
# Real free-running threads, two workloads: the seeded UTS small tree
# (steal-heavy, gmem-access dominated) and the fig5-style SCF task pool
# (compute-heavy). Each run measures the tracing overhead (printed and
# asserted within the band by the binary — 2.0x, tightened from the
# pre-batching 3.0x now that staged ring publication and order-only
# instants hold the measured ratio around 1.4x) and race/predict/
# deadlock-checks its own trace; the UTS run additionally exports and
# cross-checks the whole observability surface — wall-stamped JSONL +
# Chrome traces and blame decomposition exact per thread span.
conc_t0=$(date +%s)
cargo run --release --offline -q -p scioto-bench --bin concurrent_obs -- \
    --ranks 4 --reps 5 --max-overhead 2.0 --seed 42 --tree small \
    --trace-ring 262144 \
    --trace-out "$work/conc.jsonl" \
    --chrome-out "$work/conc_chrome.json" \
    --analysis-out "$work/conc_analysis.json" \
    --trace-summary "$work/conc_summary.txt" \
    --race-check --predict --deadlock
cargo run --release --offline -q -p scioto-bench --bin concurrent_obs -- \
    --ranks 4 --reps 3 --max-overhead 2.0 --seed 42 --app scf \
    --race-check --predict --deadlock
# Both exports validate; the JSONL classifies as wall-clock (valid,
# analyzable, not replayable by design — exit 0, not an error cascade).
cargo run --release --offline -q -p scioto-bench --bin trace_check -- \
    --file "$work/conc_chrome.json" --ranks 4
cargo run --release --offline -q -p scioto-bench --bin trace_check -- \
    --file "$work/conc.jsonl" --replayable
grep -q 'clock: wall' "$work/conc_summary.txt"
# The offline analyzer re-derives the identical wall-clock blame report
# from the JSONL dump alone.
cargo run --release --offline -q -p scioto-bench --bin analyze -- \
    --file "$work/conc.jsonl" \
    --json-out "$work/conc_analysis_offline.json" > /dev/null
cmp "$work/conc_analysis.json" "$work/conc_analysis_offline.json"
# The standalone race checker accepts the wall-clock dump too — all
# three analyses pair by generations/epochs, never timestamps.
cargo run --release --offline -q -p scioto-race --bin race_check -- \
    --predict --deadlock "$work/conc.jsonl"
conc_t1=$(date +%s)
conc_secs=$((conc_t1 - conc_t0))
echo "ok: concurrent observability lane finished in ${conc_secs}s"
if [ "$conc_secs" -ge 60 ]; then
    echo "FAIL: concurrent lane took ${conc_secs}s (budget: <60s)" >&2
    exit 1
fi

if [ "$BLESS" = 1 ]; then
    echo "== bless: refreshing results/baselines/ =="
    mkdir -p results/baselines
    for f in "$work"/loose/BENCH_*.json "$work"/exact/BENCH_*.json; do
        cp "$f" "results/baselines/$(basename "$f")"
        echo "blessed results/baselines/$(basename "$f")"
    done
else
    echo "== bench_diff: default-policy runs vs committed baselines =="
    # Generous tolerance: the diff exists to catch real regressions from
    # code changes, and virtual-time results only move when the code does.
    diff_all "$work/loose" 0.5
fi

echo "verify.sh: all checks passed"
