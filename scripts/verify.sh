#!/usr/bin/env sh
# Tier-1 verification, fully offline — proves the hermetic-build claim:
# a clean checkout builds and tests with no registry access, and the
# dependency graph contains nothing but workspace crates.
#
# Usage: verify.sh [--bless]
#   --bless  regenerate results/baselines/ from this tree's runs instead
#            of diffing against them (commit the refreshed files).
set -eu

cd "$(dirname "$0")/.."

BLESS=0
for arg in "$@"; do
    case "$arg" in
        --bless) BLESS=1 ;;
        *) echo "usage: verify.sh [--bless]" >&2; exit 2 ;;
    esac
done

echo "== cargo tree: auditing for external dependencies =="
# Every node in the default-feature dependency graph must be a local
# workspace crate. `cargo tree` prints local path deps with a trailing
# "(/abs/path)"; anything without one came from a registry.
tree_out=$(cargo tree --workspace --edges normal,build,dev --offline)
external=$(printf '%s\n' "$tree_out" \
    | grep -Eo '[a-zA-Z0-9_-]+ v[0-9][^ ]*( \(.*\))?$' \
    | grep -v '(/' || true)
if [ -n "$external" ]; then
    echo "FAIL: non-workspace dependencies found:" >&2
    printf '%s\n' "$external" | sort -u >&2
    exit 1
fi
echo "ok: dependency graph is workspace-only"

echo "== cargo build --release --offline =="
cargo build --release --offline

echo "== cargo test -q --offline (tier-1) =="
cargo test -q --offline

echo "== scioto-lint: source invariant scan (hard gate) =="
cargo run --release --offline -q -p scioto-race --bin scioto-lint

echo "== trace smoke: table1 --trace-out round-trips through trace_check =="
trace_tmp=$(mktemp /tmp/scioto-trace.XXXXXX.json)
work=$(mktemp -d /tmp/scioto-verify.XXXXXX)
trap 'rm -rf "$trace_tmp" "$work"' EXIT
cargo run --release --offline -q -p scioto-bench --bin table1 -- \
    --trace-out "$trace_tmp" > /dev/null
cargo run --release --offline -q -p scioto-bench --bin trace_check -- \
    --file "$trace_tmp" --ranks 2

echo "== analyze: traced table1 -> blame/critical-path report =="
# One traced run emits the JSONL dump, the in-memory analysis, and the
# machine-readable benchmark result.
cargo run --release --offline -q -p scioto-bench --bin table1 -- \
    --trace-out "$work/table1.jsonl" \
    --analysis-out "$work/table1_analysis.json" \
    --race-check \
    --json-out "$work/BENCH_table1.json" > /dev/null
# The offline analyzer re-parses the JSONL dump; its report must match
# the in-memory analysis byte for byte.
cargo run --release --offline -q -p scioto-bench --bin analyze -- \
    --file "$work/table1.jsonl" \
    --json-out "$work/table1_analysis_offline.json" > /dev/null
cmp "$work/table1_analysis.json" "$work/table1_analysis_offline.json"
echo "ok: offline analyzer matches in-memory analysis"

echo "== bench runs: fig7 / fig4 / ablation / fig8 (new default policy) =="
# Every bin runs with `--race-check`: the traced run replays through the
# happens-before checker in-process, so all six bins are race-gated under
# the new default policy (locality victims + tree barrier + batched TD).
cargo run --release --offline -q -p scioto-bench --bin fig7_uts_cluster -- \
    --max-ranks 8 --tree small --trace-out "$work/fig7.jsonl" \
    --race-check --json-out "$work/BENCH_fig7.json" > /dev/null
cargo run --release --offline -q -p scioto-bench --bin fig4_termination -- \
    --race-check --json-out "$work/BENCH_fig4.json" > /dev/null
cargo run --release --offline -q -p scioto-bench --bin ablation -- \
    --race-check --json-out "$work/BENCH_ablation.json" > /dev/null
cargo run --release --offline -q -p scioto-bench --bin fig8_uts_xt4 -- \
    --max-ranks 8 --tree small --race-check \
    --json-out "$work/BENCH_fig8.json" > /dev/null
cargo run --release --offline -q -p scioto-bench --bin fig5_fig6_apps -- \
    --max-ranks 1 --race-check > /dev/null

echo "== policy ablation: old knobs still reproduce the pinned baseline =="
# The ablation baseline (uniform victims, flat barrier, per-slot TD) must
# stay byte-identical: rel-tol 0 against its own pinned results file.
cargo run --release --offline -q -p scioto-bench --bin fig7_uts_cluster -- \
    --max-ranks 8 --tree small --old-policy \
    --json-out "$work/BENCH_fig7_oldpolicy.json" > /dev/null
if [ "$BLESS" = 0 ]; then
    cargo run --release --offline -q -p scioto-bench --bin bench_diff -- \
        --baseline "results/baselines/BENCH_fig7_oldpolicy.json" \
        --new "$work/BENCH_fig7_oldpolicy.json" --rel-tol 0
fi
# New policy vs old policy on the same workload: the knobs are expected to
# move throughput (that is the point), but never catastrophically — the
# params differ by construction, so they are excluded from the gate.
cargo run --release --offline -q -p scioto-bench --bin bench_diff -- \
    --baseline "$work/BENCH_fig7_oldpolicy.json" \
    --new "$work/BENCH_fig7.json" \
    --ignore-params victim,barrier,td_batch --rel-tol 0.5

echo "== engine equivalence: pinned baselines at rel-tol 0 under BOTH engines =="
# The virtual-time kernel has two execution substrates (parked threads,
# event-driven fibers) behind one scheduler; the engine must never move a
# result. Every committed baseline is re-derived under each engine
# explicitly and diffed byte-for-byte (rel-tol 0). This is the hard gate
# behind the "engines are byte-identical" claim in README/DESIGN.
for eng in threads events; do
    cargo run --release --offline -q -p scioto-bench --bin table1 -- \
        --engine "$eng" --json-out "$work/eng_table1.json" > /dev/null
    cargo run --release --offline -q -p scioto-bench --bin fig7_uts_cluster -- \
        --max-ranks 8 --tree small --engine "$eng" \
        --json-out "$work/eng_fig7.json" > /dev/null
    cargo run --release --offline -q -p scioto-bench --bin fig7_uts_cluster -- \
        --max-ranks 8 --tree small --old-policy --engine "$eng" \
        --json-out "$work/eng_fig7_oldpolicy.json" > /dev/null
    cargo run --release --offline -q -p scioto-bench --bin fig4_termination -- \
        --engine "$eng" --json-out "$work/eng_fig4.json" > /dev/null
    cargo run --release --offline -q -p scioto-bench --bin ablation -- \
        --engine "$eng" --json-out "$work/eng_ablation.json" > /dev/null
    cargo run --release --offline -q -p scioto-bench --bin fig8_uts_xt4 -- \
        --max-ranks 8 --tree small --engine "$eng" \
        --json-out "$work/eng_fig8.json" > /dev/null
    if [ "$BLESS" = 0 ]; then
        for f in table1 fig7 fig7_oldpolicy fig4 ablation fig8; do
            cargo run --release --offline -q -p scioto-bench --bin bench_diff -- \
                --baseline "results/baselines/BENCH_$f.json" \
                --new "$work/eng_$f.json" --rel-tol 0
        done
    fi
    echo "ok: all pinned baselines reproduce at rel-tol 0 on the $eng engine"
done

echo "== 1024-rank scale: fig4 + fig7 on the event engine, near/far tiers =="
# Only the fiber engine can stand up 1024 ranks on this host; the sweep
# point uses the topology-aware near/far latency preset and is pinned as
# its own baseline (deterministic, so rel-tol 0).
cargo run --release --offline -q -p scioto-bench --bin fig4_termination -- \
    --max-ranks 1024 --only-ranks 1024 --latency nearfar --engine events \
    --json-out "$work/BENCH_fig4_1024_nearfar.json" > /dev/null
cargo run --release --offline -q -p scioto-bench --bin fig7_uts_cluster -- \
    --max-ranks 1024 --only-ranks 1024 --latency nearfar --engine events \
    --tree small --json-out "$work/BENCH_fig7_1024_nearfar.json" > /dev/null
if [ "$BLESS" = 0 ]; then
    for f in BENCH_fig4_1024_nearfar BENCH_fig7_1024_nearfar; do
        cargo run --release --offline -q -p scioto-bench --bin bench_diff -- \
            --baseline "results/baselines/$f.json" \
            --new "$work/$f.json" --rel-tol 0
    done
fi
echo "ok: 1024-rank event-engine sweep points reproduce"

echo "== race check: happens-before replay of table1 + fig7 traces (hard gate) =="
race_t0=$(date +%s)
cargo run --release --offline -q -p scioto-race --bin race_check -- \
    "$work/table1.jsonl" "$work/fig7.jsonl"
race_t1=$(date +%s)
race_secs=$((race_t1 - race_t0))
echo "ok: race check finished in ${race_secs}s"
if [ "$race_secs" -ge 30 ]; then
    echo "FAIL: race check took ${race_secs}s (budget: <30s)" >&2
    exit 1
fi

if [ "$BLESS" = 1 ]; then
    echo "== bless: refreshing results/baselines/ =="
    mkdir -p results/baselines
    for f in BENCH_table1 BENCH_fig7 BENCH_fig4 BENCH_ablation BENCH_fig8 \
             BENCH_fig7_oldpolicy BENCH_fig4_1024_nearfar \
             BENCH_fig7_1024_nearfar; do
        cp "$work/$f.json" "results/baselines/$f.json"
        echo "blessed results/baselines/$f.json"
    done
else
    echo "== bench_diff: table1 + fig7 + fig4 + ablation + fig8 vs committed baselines =="
    # Generous tolerance: the diff exists to catch real regressions from
    # code changes, and virtual-time results only move when the code does.
    for f in BENCH_table1 BENCH_fig7 BENCH_fig4 BENCH_ablation BENCH_fig8; do
        cargo run --release --offline -q -p scioto-bench --bin bench_diff -- \
            --baseline "results/baselines/$f.json" \
            --new "$work/$f.json" --rel-tol 0.5
    done
fi

echo "verify.sh: all checks passed"
