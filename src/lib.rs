//! # scioto-repro — umbrella crate for the Scioto (ICPP 2008) reproduction
//!
//! Re-exports every workspace crate under one roof so the examples and
//! workspace-level integration tests can use short paths, and so a
//! downstream user can depend on a single crate:
//!
//! * [`sim`] — the deterministic virtual-time distributed machine;
//! * [`armci`] — one-sided communication (put/get/acc/RMW/locks);
//! * [`mpi`] — two-sided messaging and collectives;
//! * [`ga`] — Global Arrays;
//! * [`scioto`] — the task-parallel framework itself;
//! * [`uts`], [`scf`], [`tce`] — the paper's three applications.
//!
//! See the repository `README.md` for a tour and `DESIGN.md` /
//! `EXPERIMENTS.md` for the reproduction methodology and results.

pub use scioto;
pub use scioto_armci as armci;
pub use scioto_ga as ga;
pub use scioto_mpi as mpi;
pub use scioto_scf as scf;
pub use scioto_sim as sim;
pub use scioto_tce as tce;
pub use scioto_uts as uts;
