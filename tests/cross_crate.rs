//! Workspace-level integration tests: exercises spanning the whole stack,
//! from the virtual-time machine through ARMCI/GA/Scioto up to the
//! applications — plus a real-thread (Concurrent mode) soak of the same
//! code paths.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use scioto::{Task, TaskCollection, TcConfig, AFFINITY_HIGH};
use scioto_armci::Armci;
use scioto_ga::{Ga, Patch};
use scioto_mpi::{Comm, ReduceOp};
use scioto_scf::{
    run_scf_parallel, scf_sequential, BasisSet, LoadBalance, Molecule, ParallelScfConfig,
    ScfConfig,
};
use scioto_sim::{
    validate_json, Engine, ExecMode, LatencyModel, Machine, MachineConfig, SpeedModel, Trace,
    TraceConfig, TraceEvent,
};
use scioto_tce::contract::reference_checksum;
use scioto_tce::{run_contraction, ContractionConfig, TceLoadBalance};
use scioto_uts::mpi_ws::{run_mpi_uts, MpiUtsConfig};
use scioto_uts::scioto_driver::{run_scioto_uts, SciotoUtsConfig};
use scioto_uts::{presets, sequential, TreeStats};

#[test]
fn uts_three_drivers_agree_end_to_end() {
    let params = presets::tiny();
    let seq = sequential::count_tree(&params);
    for ranks in [2, 5] {
        let scioto_out = Machine::run(
            MachineConfig::virtual_time(ranks).with_latency(LatencyModel::cluster()),
            move |ctx| run_scioto_uts(ctx, &SciotoUtsConfig::new(params)).0,
        );
        let mpi_out = Machine::run(
            MachineConfig::virtual_time(ranks).with_latency(LatencyModel::cluster()),
            move |ctx| run_mpi_uts(ctx, &MpiUtsConfig::new(params)).0,
        );
        let mut a = TreeStats::default();
        let mut b = TreeStats::default();
        scioto_out.results.iter().for_each(|s| a.merge(s));
        mpi_out.results.iter().for_each(|s| b.merge(s));
        assert_eq!(a, b, "driver mismatch at ranks={ranks}");
        assert_eq!(a.nodes, seq.nodes);
    }
}

#[test]
fn scf_energy_is_scheme_and_scale_invariant() {
    let basis = BasisSet::even_tempered(Molecule::h_chain(4), 2, 0.4, 3.5);
    let seq = scf_sequential(&basis, &ScfConfig::default());
    let mut energies = vec![seq.energy];
    for ranks in [1, 3] {
        for lb in [LoadBalance::Scioto, LoadBalance::GlobalCounter] {
            let b = basis.clone();
            let out = Machine::run(
                MachineConfig::virtual_time(ranks).with_latency(LatencyModel::cluster()),
                move |ctx| {
                    run_scf_parallel(
                        ctx,
                        &b,
                        &ParallelScfConfig {
                            lb,
                            ..Default::default()
                        },
                    )
                    .energy
                },
            );
            energies.push(out.results[0]);
        }
    }
    for e in &energies[1..] {
        assert!(
            (e - energies[0]).abs() < 1e-8,
            "energy drift: {energies:?}"
        );
    }
}

#[test]
fn tce_checksum_is_scheme_and_scale_invariant() {
    let mut sums = Vec::new();
    for ranks in [1, 4] {
        for lb in [TceLoadBalance::Scioto, TceLoadBalance::GlobalCounter] {
            let out = Machine::run(
                MachineConfig::virtual_time(ranks).with_latency(LatencyModel::cluster()),
                move |ctx| {
                    let cfg = ContractionConfig::new(lb);
                    let reference = reference_checksum(ctx, &cfg);
                    let (_, checksum) = run_contraction(ctx, &cfg);
                    (reference, checksum)
                },
            );
            sums.push(out.results[0]);
        }
    }
    let (r0, _) = sums[0];
    for (r, c) in &sums {
        assert!((r - r0).abs() < 1e-12);
        assert!((c - r).abs() < 1e-9 * r.max(1.0), "{c} vs reference {r}");
    }
}

#[test]
fn mixed_model_program_mpi_ga_scioto_together() {
    // The interoperability claim of the paper: one program using MPI
    // collectives, GA arrays, and a Scioto task collection side by side.
    let out = Machine::run(
        MachineConfig::virtual_time(4).with_latency(LatencyModel::cluster()),
        |ctx| {
            let comm = Comm::world(ctx);
            let ga = Ga::init(ctx);
            let a = ga.create(ctx, "grid", 16, 16);
            ga.zero(ctx, a);
            ga.sync(ctx);

            let tc = TaskCollection::create(ctx, ga.armci(), TcConfig::new(16, 2, 256));
            let ga_cb = ga.clone();
            let h = tc.register(
                ctx,
                Arc::new(move |t| {
                    let i = scioto::wire::get_u64(t.body(), 0) as usize;
                    ga_cb.acc(
                        t.ctx,
                        scioto_ga::GaHandle(0),
                        Patch::new(i, i + 1, 0, 16),
                        1.0,
                        &[1.0; 16],
                    );
                }),
            );
            if ctx.rank() == 0 {
                let mut task = Task::with_body_size(h, 8);
                for i in 0..16u64 {
                    scioto::wire::set_u64(task.body_mut(), 0, i);
                    tc.add(ctx, (i % 4) as usize, AFFINITY_HIGH, &task);
                }
            }
            tc.process(ctx);
            ga.sync(ctx);
            // MPI allreduce over a GA-read partial sum.
            let mine = ga.get(ctx, a, ga.distribution(a, ctx.rank()));
            let partial: f64 = mine.iter().sum();
            let total = comm.allreduce_f64(ctx, &[partial], ReduceOp::Sum);
            total[0]
        },
    );
    for v in out.results {
        assert_eq!(v, 256.0);
    }
}

#[test]
fn concurrent_mode_soak_full_stack() {
    // Real threads + real locks through the whole stack.
    for trial in 0..3 {
        let params = presets::tiny();
        let seq = sequential::count_tree(&params);
        let cfg = MachineConfig {
            mode: ExecMode::Concurrent,
            ..MachineConfig::virtual_time(4)
        };
        let out = Machine::run(cfg, move |ctx| {
            run_scioto_uts(ctx, &SciotoUtsConfig::new(params)).0
        });
        let mut total = TreeStats::default();
        out.results.iter().for_each(|s| total.merge(s));
        assert_eq!(total.nodes, seq.nodes, "trial {trial}");
    }
}

#[test]
fn heterogeneous_machine_shifts_load_to_fast_ranks() {
    let params = presets::small();
    let out = Machine::run(
        MachineConfig::virtual_time(8)
            .with_latency(LatencyModel::cluster())
            .with_speed(SpeedModel::hetero_cluster(8)),
        move |ctx| run_scioto_uts(ctx, &SciotoUtsConfig::new(params)).0,
    );
    let fast: u64 = out.results.iter().step_by(2).map(|s| s.nodes).sum();
    let slow: u64 = out.results.iter().skip(1).step_by(2).map(|s| s.nodes).sum();
    assert!(
        fast > slow,
        "fast ranks should process more nodes: fast={fast} slow={slow}"
    );
}

#[test]
fn multiple_collections_in_one_program() {
    // §3.1: multiple collections may exist; one is processed while others
    // are being seeded (phase-based parallelism).
    let out = Machine::run(MachineConfig::virtual_time(3), |ctx| {
        let armci = Armci::init(ctx);
        let tc1 = TaskCollection::create(ctx, &armci, TcConfig::new(8, 2, 128));
        let tc2 = TaskCollection::create(ctx, &armci, TcConfig::new(8, 2, 128));
        let count = Arc::new(AtomicU64::new(0));
        let clo1 = tc1.register_clo(ctx, count.clone());
        let tc2_ref = tc2.clone();
        let h2 = tc2.register(
            ctx,
            Arc::new(move |t| {
                let c: Arc<AtomicU64> = t.tc.clo(t.ctx, scioto::CloHandle(0));
                c.fetch_add(100, Ordering::Relaxed);
            }),
        );
        let clo2 = tc2.register_clo(ctx, count.clone());
        let _ = (clo1, clo2);
        let h1 = tc1.register(
            ctx,
            Arc::new(move |t| {
                let c: Arc<AtomicU64> = t.tc.clo(t.ctx, scioto::CloHandle(0));
                c.fetch_add(1, Ordering::Relaxed);
                // While tc1 is processing, tasks may be added to tc2.
                tc2_ref.add(t.ctx, t.ctx.rank(), AFFINITY_HIGH, &Task::new(h2, vec![]));
            }),
        );
        if ctx.rank() == 0 {
            for _ in 0..9 {
                tc1.add(ctx, 0, AFFINITY_HIGH, &Task::new(h1, vec![]));
            }
        }
        tc1.process(ctx);
        tc2.process(ctx);
        count.load(Ordering::Relaxed)
    });
    // 9 tasks in tc1 (+1 each) spawn 9 tasks in tc2 (+100 each).
    assert_eq!(out.results.iter().sum::<u64>(), 9 + 900);
}

#[test]
fn same_seed_gives_bit_identical_steals_and_virtual_time() {
    // The hermetic-build contract: with the in-tree RNG, a virtual-time
    // run is a pure function of the MachineConfig. Two runs with the same
    // seed must agree bit-for-bit on every per-rank counter (including
    // steal attempts/successes, which depend on every victim draw) and on
    // the virtual-time report.
    let params = presets::tiny();
    let run = || {
        Machine::run(
            MachineConfig::virtual_time(4)
                .with_latency(LatencyModel::cluster())
                .with_seed(0xD5EED),
            move |ctx| run_scioto_uts(ctx, &SciotoUtsConfig::new(params)).1,
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.results, b.results, "per-rank ProcessStats must match");
    assert_eq!(a.report.makespan_ns, b.report.makespan_ns);
    assert_eq!(a.report.rank_clock_ns, b.report.rank_clock_ns);
    let steals: u64 = a.results.iter().map(|s| s.steals_succeeded).sum();
    assert!(steals > 0, "workload must actually exercise stealing");
}

#[test]
fn different_seeds_give_different_victim_sequences() {
    // Victim selection draws `gen_range(0..n-1)` from the per-rank stream
    // (collection.rs). Replay the same draw sequence under two seeds: the
    // streams are derived by mixing (seed, rank), so changing the seed must
    // change the victim sequence on every rank.
    let victims = |seed: u64| {
        Machine::run(
            MachineConfig::virtual_time(4).with_seed(seed),
            |ctx| {
                let n = ctx.nranks();
                (0..32)
                    .map(|_| {
                        let k = ctx.rng().gen_range(0..n - 1);
                        if k >= ctx.rank() {
                            k + 1
                        } else {
                            k
                        }
                    })
                    .collect::<Vec<usize>>()
            },
        )
        .results
    };
    let a = victims(1);
    let b = victims(2);
    for (rank, (va, vb)) in a.iter().zip(&b).enumerate() {
        assert_ne!(va, vb, "rank {rank}: seeds 1 and 2 picked identical victims");
        assert!(va.iter().all(|&v| v != rank && v < 4));
    }
}

/// Seeded 8-rank traced UTS run — the observability acceptance workload.
fn traced_uts_report(seed: u64) -> scioto_sim::Report {
    let params = presets::tiny();
    Machine::run(
        MachineConfig::virtual_time(8)
            .with_latency(LatencyModel::cluster())
            .with_seed(seed)
            .with_trace(TraceConfig::enabled()),
        move |ctx| run_scioto_uts(ctx, &SciotoUtsConfig::new(params)).0,
    )
    .report
}

fn traced_uts(seed: u64) -> Trace {
    traced_uts_report(seed).trace.expect("tracing was enabled")
}

#[test]
fn same_seed_gives_byte_identical_trace_exports() {
    // Events are stamped with the emitting rank's virtual clock, so a
    // virtual-time trace is a pure function of the MachineConfig: both
    // export formats must agree byte for byte across same-seed runs.
    let a = traced_uts(0xD5EED);
    let b = traced_uts(0xD5EED);
    assert_eq!(a.to_jsonl(), b.to_jsonl(), "JSONL export must be bit-identical");
    assert_eq!(
        a.to_chrome_json(),
        b.to_chrome_json(),
        "Chrome export must be bit-identical"
    );

    let chrome = a.to_chrome_json();
    validate_json(&chrome).expect("chrome export parses as JSON");
    // Per-rank tracks with the acceptance event kinds, stamped in
    // virtual ns.
    for r in 0..a.nranks() {
        assert!(
            chrome.contains(&format!("\"name\":\"rank {r}\"")),
            "rank {r} track metadata missing"
        );
        assert!(
            a.events_for(r)
                .iter()
                .any(|e| matches!(e.event, TraceEvent::TdWave { .. })),
            "rank {r} has no TdWave events"
        );
    }
    let kinds: Vec<&str> = a
        .events
        .iter()
        .flatten()
        .map(|e| e.event.name())
        .collect();
    assert!(kinds.contains(&"TaskExecBegin"));
    assert!(kinds.contains(&"StealAttempt"));
    assert!(
        a.events
            .iter()
            .flatten()
            .any(|e| e.t_ns > 0),
        "events must carry non-zero virtual timestamps"
    );
}

#[test]
fn different_seeds_give_different_traced_steal_sequences() {
    // The steal schedule is seed-dependent, and the trace must show it:
    // the per-rank (time, victim) sequences of StealAttempt events cannot
    // coincide across seeds on every rank.
    let steal_seq = |t: &Trace| -> Vec<Vec<(u64, u32)>> {
        (0..t.nranks())
            .map(|r| {
                t.events_for(r)
                    .iter()
                    .filter_map(|e| match e.event {
                        TraceEvent::StealAttempt { victim, .. } => Some((e.t_ns, victim)),
                        _ => None,
                    })
                    .collect()
            })
            .collect()
    };
    let a = traced_uts(1);
    let b = traced_uts(2);
    assert_ne!(
        steal_seq(&a),
        steal_seq(&b),
        "seeds 1 and 2 produced identical steal timelines"
    );
}

#[test]
fn analyzer_blame_sums_exactly_to_elapsed_on_uts() {
    // The tentpole invariant: the six blame categories of every rank sum
    // exactly to that rank's elapsed virtual time from the Report, and
    // the critical path is bounded by total work below max single-task
    // time and above the summed elapsed time.
    let report = traced_uts_report(0xD5EED);
    let trace = report.trace.as_ref().unwrap();
    let analysis = scioto_analyze::analyze(trace);
    assert_eq!(analysis.ranks, 8);
    for r in 0..analysis.ranks {
        assert_eq!(
            analysis.blame[r].total(),
            report.rank_clock_ns[r],
            "rank {r} blame must sum to its Report elapsed time"
        );
    }
    // The workload actually exercises the interesting categories.
    let total = analysis.total_blame();
    assert!(total.get(scioto_analyze::Category::Exec) > 0, "no exec time attributed");
    assert!(total.get(scioto_analyze::Category::Steal) > 0, "no steal time attributed");
    assert!(analysis.provenance.total_successes() > 0);
    assert!(analysis.provenance.migrated_execs > 0);

    let cp = &analysis.critical_path;
    let total_elapsed: u64 = report.rank_clock_ns.iter().sum();
    assert_eq!(cp.length_ns, analysis.makespan_ns);
    assert!(cp.length_ns <= total_elapsed);
    assert!(cp.length_ns >= cp.max_task_ns, "critical path shorter than one task");
    assert!(cp.max_task_ns > 0);
    assert!(!cp.truncated);
    assert!(analysis.warnings.is_empty(), "{:?}", analysis.warnings);
}

#[test]
fn analyzer_blame_invariant_holds_for_lock_and_barrier_heavy_run() {
    // A table1-style 2-rank microbench: explicit barriers, remote adds
    // through the victim's lock, termination detection — the categories a
    // steal-light run exercises.
    let out = Machine::run(
        MachineConfig::virtual_time(2)
            .with_latency(LatencyModel::cluster())
            .with_seed(7)
            .with_trace(TraceConfig::enabled()),
        |ctx| {
            let armci = Armci::init(ctx);
            let tc = TaskCollection::create(ctx, &armci, TcConfig::new(8, 2, 256));
            let h = tc.register(ctx, Arc::new(|t| t.ctx.compute(1_000)));
            armci.barrier(ctx);
            if ctx.rank() == 1 {
                for _ in 0..50 {
                    tc.add(ctx, 0, AFFINITY_HIGH, &Task::new(h, vec![]));
                }
            }
            tc.process(ctx);
            armci.barrier(ctx);
        },
    );
    let analysis = scioto_analyze::analyze(out.report.trace.as_ref().unwrap());
    for r in 0..2 {
        assert_eq!(analysis.blame[r].total(), out.report.rank_clock_ns[r], "rank {r}");
    }
    let total = analysis.total_blame();
    assert!(total.get(scioto_analyze::Category::Barrier) > 0, "no barrier time attributed");
    assert!(total.get(scioto_analyze::Category::Td) > 0, "no TD time attributed");
}

#[test]
fn analysis_report_is_deterministic_and_survives_jsonl_roundtrip() {
    // Same seed → byte-identical analysis JSON, both in-memory and after
    // a JSONL export/re-parse round trip.
    let a = scioto_analyze::analyze(&traced_uts(0xD5EED));
    let b = scioto_analyze::analyze(&traced_uts(0xD5EED));
    let ja = a.to_json();
    assert_eq!(ja, b.to_json(), "same-seed analysis must be byte-identical");
    validate_json(&ja).expect("analysis JSON parses");
    assert!(ja.contains("\"schema\":\"scioto-analysis-v1\""));

    let reparsed = scioto_analyze::jsonl::parse(&traced_uts(0xD5EED).to_jsonl())
        .expect("JSONL dump re-parses");
    assert_eq!(
        scioto_analyze::analyze(&reparsed).to_json(),
        ja,
        "offline analysis of the JSONL dump must match the in-memory analysis"
    );
}

#[test]
fn replay_of_recorded_uts_trace_is_byte_identical() {
    // The ISSUE-7 acceptance gate: lower a recorded fig7@8-shaped trace
    // into a replay program and re-execute it on the virtual-time kernel
    // with no workload closure. The replay must reproduce the trace — and
    // therefore the blame decomposition and critical path — byte for byte.
    let live = traced_uts(0xD5EED);
    let prog = scioto_analyze::lower(&live).expect("recorded trace lowers for replay");
    let replayed = scioto_sim::run_replay(&prog);
    assert_eq!(
        live.to_jsonl(),
        replayed.to_jsonl(),
        "replay must reproduce the recorded trace byte for byte"
    );
    assert_eq!(
        scioto_analyze::analyze(&live).to_json(),
        scioto_analyze::analyze(&replayed).to_json(),
        "replayed blame decomposition and critical path must match the live run"
    );
}

#[test]
fn record_replay_replay_is_a_fixed_point() {
    // Determinism satellite: a replayed trace is itself replayable, and
    // the second generation is byte-identical to the first — replay is a
    // fixed point, not an approximation that drifts per generation.
    let live = traced_uts(0xD5EED);
    let gen1 = scioto_sim::run_replay(
        &scioto_analyze::lower(&live).expect("live trace lowers"),
    );
    let gen2 = scioto_sim::run_replay(
        &scioto_analyze::lower(&gen1).expect("replayed trace lowers again"),
    );
    assert_eq!(gen1.to_jsonl(), gen2.to_jsonl(), "replay must be a fixed point");
    assert_eq!(
        scioto_analyze::analyze(&gen1).to_json(),
        scioto_analyze::analyze(&gen2).to_json(),
        "analysis reports must be byte-identical across replay generations"
    );
}

#[test]
fn bench_json_is_deterministic_modulo_wall_clock() {
    // Build the BENCH document from same-seed UTS runs twice: only the
    // generated_wall_ns line may differ.
    let doc = |wall: u64| {
        let report = traced_uts_report(0xD5EED);
        let mut b = scioto_bench::BenchOut::new("uts_acceptance");
        b.param("ranks", 8);
        b.param("seed", "0xD5EED");
        b.metric("makespan_ns", report.makespan_ns as f64);
        for (r, ns) in report.rank_clock_ns.iter().enumerate() {
            b.metric(&format!("elapsed_ns_r{r}"), *ns as f64);
        }
        b.to_json(wall)
    };
    let a = doc(1);
    let b = doc(2);
    assert_ne!(a, b, "wall stamp must differ");
    assert_eq!(
        scioto_bench::benchjson::strip_wall_clock(&a),
        scioto_bench::benchjson::strip_wall_clock(&b),
        "BENCH json must be byte-identical modulo the wall-clock line"
    );
    scioto_bench::benchjson::validate(&a).expect("BENCH json satisfies its schema");
    let parsed = scioto_bench::benchjson::parse(&a).unwrap();
    assert_eq!(parsed.name, "uts_acceptance");
    assert_eq!(parsed.metrics.len(), 9);
}

/// One traced 8-rank UTS run under an explicit virtual-time engine.
fn traced_uts_on_engine(engine: Engine) -> scioto_sim::Report {
    let params = presets::tiny();
    Machine::run(
        MachineConfig::virtual_time(8)
            .with_latency(LatencyModel::cluster())
            .with_trace(TraceConfig::enabled())
            .with_engine(engine),
        move |ctx| run_scioto_uts(ctx, &SciotoUtsConfig::new(params)).0,
    )
    .report
}

#[test]
fn thread_and_event_engines_are_byte_identical() {
    // The engine is an execution substrate, not a model: a same-seed
    // virtual-time run must produce the same Report and the same trace
    // bytes whether ranks are parked OS threads or resumable fibers. This
    // is the invariant that lets the pinned baselines stay valid at
    // rel-tol 0 under either engine.
    if !Engine::events_supported() {
        eprintln!("fiber engine unsupported on this target; skipping");
        return;
    }
    let t = traced_uts_on_engine(Engine::Threads);
    let e = traced_uts_on_engine(Engine::Events);
    assert_eq!(t.mode, e.mode);
    assert_eq!(t.makespan_ns, e.makespan_ns);
    assert_eq!(t.rank_clock_ns, e.rank_clock_ns);
    assert_eq!(t.events, e.events, "kernel event counters must match");
    let tj = t.trace.expect("tracing enabled").to_jsonl();
    let ej = e.trace.expect("tracing enabled").to_jsonl();
    assert_eq!(tj, ej, "JSONL trace export must be byte-identical");
}

#[test]
fn event_engine_runs_1024_ranks() {
    // Capacity test only the fiber engine can pass on this host: 1024
    // parked OS threads exceed what the thread engine can stand up, but
    // 1024 fibers on 256 KiB stacks are cheap. Light workload — skewed
    // compute, a ring message through MPI, and tree barriers.
    if !Engine::events_supported() {
        eprintln!("fiber engine unsupported on this target; skipping");
        return;
    }
    const P: usize = 1024;
    let out = Machine::run(
        MachineConfig::virtual_time(P)
            .with_latency(LatencyModel::cluster_nearfar())
            .with_barrier(scioto_sim::BarrierKind::Tree)
            .with_engine(Engine::Events)
            .with_stack_size(256 * 1024),
        |ctx| {
            let comm = Comm::world(ctx);
            ctx.compute((ctx.rank() as u64 % 7 + 1) * 10);
            ctx.barrier();
            // Ring: each rank sends its id to its right neighbour.
            let mut buf = [0u8; 8];
            buf.copy_from_slice(&(ctx.rank() as u64).to_le_bytes());
            comm.send(ctx, (ctx.rank() + 1) % P, 7, &buf);
            let msg = comm.recv(ctx, Some((ctx.rank() + P - 1) % P), Some(7));
            let from = u64::from_le_bytes(msg.data[..8].try_into().unwrap());
            ctx.barrier();
            from
        },
    );
    assert_eq!(out.report.rank_clock_ns.len(), P);
    for (r, got) in out.results.iter().enumerate() {
        assert_eq!(*got, ((r + P - 1) % P) as u64);
    }
    // Every rank must have reached the common release of the final barrier.
    let max = *out.report.rank_clock_ns.iter().max().unwrap();
    assert!(max > 0);
}
